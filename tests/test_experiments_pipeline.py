"""Experiment pipeline: case preparation, victim protocol, evaluation."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    SCALE_PRESETS,
    config_from_env,
    derive_target_labels,
    evaluate_attack_method,
    prepare_case,
    select_victims,
)


SMOKE = SCALE_PRESETS["smoke"]


@pytest.fixture(scope="module")
def case():
    return prepare_case("cora", SMOKE)


@pytest.fixture(scope="module")
def victims(case):
    selected = select_victims(case)
    derived = derive_target_labels(case, selected)
    if not derived:
        pytest.skip("no FGA-flippable victims at smoke scale")
    return derived


class TestConfig:
    def test_presets_exist(self):
        assert set(SCALE_PRESETS) == {"smoke", "small", "full"}

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert config_from_env() is SCALE_PRESETS["smoke"]

    def test_env_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(KeyError):
            config_from_env()

    def test_with_seed_copies(self):
        base = ExperimentConfig()
        other = base.with_seed(99)
        assert other.seed == 99
        assert base.seed == 0

    def test_full_preset_is_paper_protocol(self):
        full = SCALE_PRESETS["full"]
        assert full.num_victims == 40
        assert full.margin_group == 10
        assert full.dataset_scale == 1.0
        assert full.detection_k == 15
        assert full.explanation_size == 20


class TestPrepareCase:
    def test_model_is_trained(self, case):
        chance = 1.0 / case.graph.num_classes
        assert case.test_accuracy > chance

    def test_probabilities_normalized(self, case):
        assert np.allclose(case.probabilities.sum(axis=1), 1.0)

    def test_predictions_match_probabilities(self, case):
        assert np.array_equal(
            case.predictions, case.probabilities.argmax(axis=1)
        )

    def test_seed_changes_dataset(self):
        other = prepare_case("cora", SMOKE, seed=123)
        base = prepare_case("cora", SMOKE)
        assert (
            other.graph.num_nodes != base.graph.num_nodes
            or (other.graph.adjacency != base.graph.adjacency).nnz > 0
        )


class TestVictimSelection:
    def test_victims_are_correct_test_nodes(self, case):
        selected = select_victims(case)
        for node in selected:
            assert node in case.split.test
            assert case.predictions[node] == case.graph.labels[node]

    def test_degree_bounds_respected(self, case):
        degrees = case.graph.degrees()
        for node in select_victims(case):
            assert SMOKE.min_degree <= degrees[node] <= SMOKE.max_degree

    def test_count_bounded_by_config(self, case):
        selected = select_victims(case)
        # margin extremes may push slightly past num_victims
        assert len(selected) <= SMOKE.num_victims + 2 * SMOKE.margin_group

    def test_target_labels_differ_from_truth(self, case, victims):
        for victim in victims:
            assert victim.target_label != case.graph.labels[victim.node]

    def test_budget_positive(self, victims):
        assert all(v.budget >= 1 for v in victims)


class TestEvaluation:
    def test_structure_and_ranges(self, case, victims):
        from repro.attacks import RandomAttack
        from repro.explain import GNNExplainer

        attack = RandomAttack(case.model, seed=0)
        evaluation = evaluate_attack_method(
            case,
            attack,
            victims,
            lambda graph: GNNExplainer(case.model, epochs=10, seed=0),
        )
        row = evaluation.row()
        assert set(row) == {"ASR", "ASR-T", "Precision", "Recall", "F1", "NDCG"}
        for key, value in row.items():
            if not np.isnan(value):
                assert 0.0 <= value <= 1.0
        assert len(evaluation.per_victim) == len(victims)

    def test_per_victim_records(self, case, victims):
        from repro.attacks import RandomAttack
        from repro.explain import GNNExplainer

        evaluation = evaluate_attack_method(
            case,
            RandomAttack(case.model, seed=0),
            victims,
            lambda graph: GNNExplainer(case.model, epochs=5, seed=0),
        )
        record = evaluation.per_victim[0]
        assert {"node", "degree", "target_label", "hit_target", "f1"} <= set(
            record
        )
