"""PGExplainer: training, inductive explanation, building blocks."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor, grad
from repro.explain import PGExplainer
from repro.explain.pg_explainer import (
    apply_edge_mlp,
    masked_adjacency_from_edge_weights,
)


@pytest.fixture(scope="module")
def fitted_pg(tiny_graph, trained_model):
    explainer = PGExplainer(trained_model, epochs=8, seed=0)
    return explainer.fit(tiny_graph, instances=8)


class TestBuildingBlocks:
    def test_apply_edge_mlp_shapes(self, rng):
        weights = [
            Tensor(rng.standard_normal((6, 4))),
            Tensor(np.zeros(4)),
            Tensor(rng.standard_normal((4, 1))),
            Tensor(np.zeros(1)),
        ]
        out = apply_edge_mlp(weights, Tensor(rng.standard_normal((10, 6))))
        assert out.shape == (10, 1)

    def test_apply_edge_mlp_differentiable_in_weights(self, rng):
        weights = [
            Tensor(rng.standard_normal((6, 4)), requires_grad=True),
            Tensor(np.zeros(4), requires_grad=True),
            Tensor(rng.standard_normal((4, 1)), requires_grad=True),
            Tensor(np.zeros(1), requires_grad=True),
        ]
        out = apply_edge_mlp(weights, Tensor(rng.standard_normal((5, 6)))).sum()
        grads = grad(out, weights, allow_unused=True)
        assert grads[0] is not None

    def test_masked_adjacency_symmetric(self, rng):
        rows = np.array([0, 1])
        cols = np.array([2, 3])
        values = Tensor(np.array([0.5, 0.8]), requires_grad=True)
        masked = masked_adjacency_from_edge_weights(4, rows, cols, values)
        assert np.allclose(masked.data, masked.data.T)
        assert masked.data[0, 2] == pytest.approx(0.5)
        assert masked.data[3, 1] == pytest.approx(0.8)

    def test_masked_adjacency_differentiable(self):
        rows = np.array([0])
        cols = np.array([1])
        values = Tensor(np.array([0.3]), requires_grad=True)
        masked = masked_adjacency_from_edge_weights(2, rows, cols, values)
        g = grad(masked.sum(), values)
        assert g.data[0] == pytest.approx(2.0)  # both directions


class TestTraining:
    def test_unfitted_explain_raises(self, tiny_graph, trained_model):
        explainer = PGExplainer(trained_model, seed=0)
        with pytest.raises(RuntimeError):
            explainer.explain_node(tiny_graph, 0)

    def test_fit_sets_flag(self, fitted_pg):
        assert fitted_pg.fitted

    def test_fit_moves_weights(self, tiny_graph, trained_model):
        explainer = PGExplainer(trained_model, epochs=4, seed=1)
        before = [w.data.copy() for w in explainer.weights]
        explainer.fit(tiny_graph, instances=6)
        moved = any(
            not np.allclose(b, w.data)
            for b, w in zip(before, explainer.weights)
        )
        assert moved

    def test_fit_with_explicit_nodes(self, tiny_graph, trained_model):
        explainer = PGExplainer(trained_model, epochs=3, seed=2)
        explainer.fit(tiny_graph, nodes=[5, 10, 15])
        assert explainer.fitted


class TestExplanation:
    def test_scores_subgraph_edges(self, fitted_pg, tiny_graph):
        explanation = fitted_pg.explain_node(tiny_graph, 10)
        assert len(explanation.edges) > 0
        for u, v in explanation.edges:
            assert tiny_graph.has_edge(u, v)
        assert np.all((explanation.weights > 0) & (explanation.weights < 1))

    def test_inductive_on_perturbed_graph(
        self, fitted_pg, tiny_graph, flippable_victim
    ):
        """Fitted once on the clean graph, applied to an attacked graph."""
        node, target_label, budget = flippable_victim
        from repro.attacks import FGATargeted

        result = FGATargeted(fitted_pg.model, seed=3).attack(
            tiny_graph, node, target_label, budget
        )
        explanation = fitted_pg.explain_node(result.perturbed_graph, node)
        explained = set(explanation.edges)
        assert any(edge in explained for edge in result.added_edges)

    def test_embeddings_shape(self, fitted_pg, tiny_graph):
        embeddings = fitted_pg.node_embeddings(tiny_graph)
        assert embeddings.shape == (tiny_graph.num_nodes, 12)

    def test_edge_inputs_layout(self, fitted_pg, tiny_graph):
        embeddings = fitted_pg.node_embeddings(tiny_graph)
        rows = np.array([0, 1])
        cols = np.array([2, 3])
        inputs = fitted_pg.edge_inputs(embeddings, rows, cols, target=7)
        assert inputs.shape == (2, 3 * embeddings.shape[1])
        width = embeddings.shape[1]
        assert np.allclose(inputs[0, :width], embeddings[0])
        assert np.allclose(inputs[0, width : 2 * width], embeddings[2])
        assert np.allclose(inputs[0, 2 * width :], embeddings[7])
