"""Parallel experiment runner: determinism across pool widths.

The contract: because every per-victim unit of work derives its randomness
from the victim's node id, ``jobs=1`` and ``jobs=N`` must produce
byte-identical result tables, and results must not depend on how victims
are sharded across workers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import FGA, FGATargeted, VictimSpec
from repro.experiments import ExperimentConfig, evaluate_attack_method
from repro.experiments.pipeline import Victim
from repro.explain import GNNExplainer
from repro.parallel import fork_available, parallel_map


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(23))
        assert parallel_map(lambda x: x * x, items, jobs=1) == [
            x * x for x in items
        ]
        if fork_available():
            assert parallel_map(lambda x: x * x, items, jobs=4) == [
                x * x for x in items
            ]

    def test_jobs_capped_by_items(self):
        assert parallel_map(lambda x: -x, [7], jobs=8) == [-7]

    def test_closure_state_is_inherited(self):
        if not fork_available():
            pytest.skip("fork unavailable")
        table = {"offset": 100}
        result = parallel_map(lambda x: x + table["offset"], [1, 2, 3], jobs=2)
        assert result == [101, 102, 103]

    def test_exceptions_propagate(self):
        def boom(x):
            raise ValueError(f"bad item {x}")

        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2], jobs=1)
        if fork_available():
            with pytest.raises(ValueError):
                parallel_map(boom, [1, 2], jobs=2)

    def test_shard_assignment_does_not_change_results(self):
        """Same outputs whether an item lands in worker 0 or worker k."""
        if not fork_available():
            pytest.skip("fork unavailable")
        items = list(range(11))
        by_two = parallel_map(lambda x: x * 3, items, jobs=2)
        by_five = parallel_map(lambda x: x * 3, items, jobs=5)
        assert by_two == by_five


class _MiniCase:
    """The slice of PreparedCase that evaluate_attack_method consumes."""

    def __init__(self, graph, model, config):
        self.graph = graph
        self.model = model
        self.config = config


@pytest.fixture(scope="module")
def mini_case(tiny_graph, trained_model):
    config = ExperimentConfig(
        budget_cap=3, detection_k=10, explanation_size=15, explainer_epochs=8
    )
    return _MiniCase(tiny_graph, trained_model, config)


@pytest.fixture(scope="module")
def runner_victims(tiny_graph, trained_model, clean_predictions):
    degrees = tiny_graph.degrees()
    attack = FGA(trained_model, seed=11)
    found = []
    eligible = np.flatnonzero(
        (clean_predictions == tiny_graph.labels) & (degrees >= 2) & (degrees <= 6)
    )
    for node in eligible:
        node = int(node)
        result = attack.attack(tiny_graph, node, None, int(degrees[node]))
        if result.misclassified:
            found.append(
                Victim(
                    node=node,
                    degree=int(degrees[node]),
                    target_label=int(result.final_prediction),
                )
            )
        if len(found) >= 4:
            break
    if len(found) < 2:
        pytest.skip("not enough flippable victims on the tiny graph")
    return found


class TestEvaluationDeterminism:
    def _evaluate(self, mini_case, victims, jobs):
        attack = FGATargeted(mini_case.model, seed=3)
        factory = lambda _graph: GNNExplainer(
            mini_case.model, epochs=8, lr=0.05, seed=41
        )
        return evaluate_attack_method(
            mini_case, attack, victims, factory, jobs=jobs
        )

    def test_jobs_one_vs_four_byte_identical(self, mini_case, runner_victims):
        if not fork_available():
            pytest.skip("fork unavailable")
        serial = self._evaluate(mini_case, runner_victims, jobs=1)
        pooled = self._evaluate(mini_case, runner_victims, jobs=4)
        assert serial.per_victim == pooled.per_victim
        for metric in ("asr", "asr_t", "precision", "recall", "f1", "ndcg"):
            left = getattr(serial, metric)
            right = getattr(pooled, metric)
            assert (np.isnan(left) and np.isnan(right)) or left == right

    def test_rng_streams_follow_the_victim_not_the_shard(
        self, tiny_graph, trained_model, runner_victims
    ):
        """Attacking victims in any order/subset yields identical results."""
        attack = FGATargeted(trained_model, seed=3)
        specs = [
            VictimSpec(v.node, v.target_label, min(2, v.budget))
            for v in runner_victims
        ]
        forward = {
            spec.node: attack.attack_one(tiny_graph, spec).added_edges
            for spec in specs
        }
        backward = {
            spec.node: attack.attack_one(tiny_graph, spec).added_edges
            for spec in reversed(specs)
        }
        assert forward == backward
