"""Seeded randomized property suite over :class:`repro.graph.Graph`.

The whole attack engine leans on a handful of structural invariants —
symmetry, binarity, zero diagonal, perturbation-by-copy, cache freshness —
that unit tests only probe at hand-picked points.  This suite drives them
with ~40 random graphs per seed (stdlib ``random`` only, so the generator
adds no dependency and shrinks trivially: rerun with the printed seed).

Invariants under test:

* construction canonicalizes any edge soup (duplicates, both directions,
  weights) into a symmetric, binary, self-loop-free adjacency;
* ``with_edges_added`` → ``with_edges_removed`` round-trips to the
  original edge set (and the reverse order too), with the *source object
  bit-untouched* at every step — perturbation never mutates;
* ``graph_cached`` entries are keyed by graph identity, so a perturbed
  graph always gets a fresh entry and the original keeps its own.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import Graph
from repro.graph.utils import graph_cached

SEEDS = (0, 7, 20260731)
GRAPHS_PER_SEED = 40


def random_graph(rng):
    """A small random graph from an adversarial edge soup.

    Edges arrive unsorted, duplicated, in both orientations and with
    non-unit weights — everything construction promises to canonicalize.
    """
    n = rng.randint(4, 24)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = rng.sample(possible, min(len(possible), rng.randint(3, 3 * n)))
    dense = np.zeros((n, n))
    for u, v in edges:
        weight = rng.choice([1.0, 2.0, 0.5])
        if rng.random() < 0.5:
            dense[u, v] = weight  # one orientation only: must symmetrize
        else:
            dense[u, v] = dense[v, u] = weight
    for node in rng.sample(range(n), rng.randint(0, 2)):
        dense[node, node] = 1.0  # self loops: must be stripped
    features = np.array(
        [[rng.random() for _ in range(5)] for _ in range(n)]
    )
    labels = np.array([rng.randint(0, 2) for _ in range(n)])
    return Graph(dense, features, labels, name=f"random-{n}"), set(edges)


def assert_canonical(graph):
    """The structural invariants every Graph must hold."""
    adjacency = graph.adjacency
    assert (adjacency != adjacency.T).nnz == 0, "adjacency must be symmetric"
    assert adjacency.diagonal().sum() == 0, "self-loops must be stripped"
    if adjacency.nnz:
        assert set(np.unique(adjacency.data)) == {1.0}, "data must be binary"
    assert adjacency.dtype == np.float64


def snapshot(graph):
    """Bit-level fingerprint of a graph's mutable members."""
    return (
        graph.adjacency.toarray().tobytes(),
        graph.features.tobytes(),
        graph.labels.tobytes(),
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestGraphInvariants:
    def test_construction_canonicalizes(self, seed):
        rng = random.Random(seed)
        for _ in range(GRAPHS_PER_SEED):
            graph, edges = random_graph(rng)
            assert_canonical(graph)
            assert graph.edge_set() == edges, f"seed={seed}"
            assert graph.num_edges == len(edges)

    def test_add_remove_round_trip(self, seed):
        rng = random.Random(seed + 1)
        for _ in range(GRAPHS_PER_SEED):
            graph, edges = random_graph(rng)
            n = graph.num_nodes
            absent = [
                (u, v)
                for u in range(n)
                for v in range(u + 1, n)
                if (u, v) not in edges
            ]
            to_add = rng.sample(absent, min(len(absent), rng.randint(1, 4)))
            if not to_add:
                continue
            before = snapshot(graph)
            grown = graph.with_edges_added(to_add)
            assert grown is not graph
            assert_canonical(grown)
            assert grown.edge_set() == edges | set(to_add)
            assert snapshot(graph) == before, "source graph was mutated"
            back = grown.with_edges_removed(to_add)
            assert back.edge_set() == edges, "add→remove must round-trip"
            assert_canonical(back)
            assert grown.edge_set() == edges | set(to_add), (
                "intermediate graph was mutated by the removal"
            )

    def test_remove_add_round_trip(self, seed):
        rng = random.Random(seed + 2)
        for _ in range(GRAPHS_PER_SEED):
            graph, edges = random_graph(rng)
            to_remove = rng.sample(
                sorted(edges), min(len(edges), rng.randint(1, 3))
            )
            before = snapshot(graph)
            shrunk = graph.with_edges_removed(to_remove)
            assert shrunk.edge_set() == edges - set(to_remove)
            assert_canonical(shrunk)
            assert snapshot(graph) == before, "source graph was mutated"
            back = shrunk.with_edges_added(to_remove)
            assert back.edge_set() == edges, "remove→add must round-trip"

    def test_features_and_labels_shared_not_copied_content(self, seed):
        """Perturbation changes structure only: attributes carry over."""
        rng = random.Random(seed + 3)
        for _ in range(GRAPHS_PER_SEED // 4):
            graph, edges = random_graph(rng)
            if not edges:
                continue
            perturbed = graph.with_edges_removed([next(iter(edges))])
            assert np.array_equal(perturbed.features, graph.features)
            assert np.array_equal(perturbed.labels, graph.labels)
            assert perturbed.name == graph.name

    def test_graph_cached_is_fresh_per_perturbation(self, seed):
        rng = random.Random(seed + 4)
        for _ in range(GRAPHS_PER_SEED // 4):
            graph, edges = random_graph(rng)
            if not edges:
                continue
            calls = []

            def builder(tag):
                calls.append(tag)
                return tag

            key = ("prop-suite", seed)
            first = graph_cached(graph, key, lambda: builder("original"))
            again = graph_cached(graph, key, lambda: builder("original-again"))
            assert first == again == "original", "same graph must hit"
            perturbed = graph.with_edges_removed([next(iter(edges))])
            fresh = graph_cached(perturbed, key, lambda: builder("perturbed"))
            assert fresh == "perturbed", "perturbed graph must miss"
            assert calls == ["original", "perturbed"]
            # ... and the original's entry survived the perturbed insert.
            assert graph_cached(graph, key, lambda: builder("boom")) == "original"


class TestGraphErrors:
    def test_self_loop_perturbation_rejected(self):
        graph, _ = random_graph(random.Random(1))
        with pytest.raises(ValueError, match="self-loop"):
            graph.with_edges_added([(2, 2)])

    def test_mismatched_features_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            Graph(np.eye(3) * 0, np.zeros((4, 2)), np.zeros(3, dtype=int))

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            Graph(np.zeros((3, 3)), np.zeros((3, 2)), np.zeros(5, dtype=int))

    def test_sparse_input_round_trips(self):
        rng = random.Random(2)
        graph, edges = random_graph(rng)
        rebuilt = Graph(
            sp.csr_matrix(graph.adjacency),
            graph.features,
            graph.labels,
        )
        assert rebuilt.edge_set() == edges
