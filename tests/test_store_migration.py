"""v1-store migration: old layouts resume untouched through the v2 store.

``tests/data/v1_store`` is a committed store produced by the pre-manifest
``ResultStore`` (shard dirs only — no MANIFEST, no lease dir).  The v2
store must adopt it transparently: first index access rebuilds the
manifest from the shard tree, a resume executes zero attacks, and every
record — and the rendered matrix — stays byte-identical.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import replace
from pathlib import Path

import pytest

from repro.arena import (
    ResultStore,
    ScenarioGrid,
    render_arena_matrices,
    run_arena,
)
from repro.experiments import SCALE_PRESETS

FIXTURE = Path(__file__).parent / "data" / "v1_store"

#: Must match the exact configuration the fixture was generated with.
CONFIG = replace(
    SCALE_PRESETS["smoke"],
    epochs=60,
    num_victims=3,
    margin_group=1,
    explainer_epochs=20,
    geattack_inner_steps=2,
)

GRID = ScenarioGrid(
    attacks=("FGA-T", "DICE"),
    defenses=("none", "jaccard"),
    budget_caps=(2,),
    seeds=(0,),
)


@pytest.fixture(scope="module")
def shared_cases():
    return {}


@pytest.fixture(scope="module")
def cold(tmp_path_factory, shared_cases):
    """A fresh cold run: the byte-level reference the fixture must match."""
    store = ResultStore(tmp_path_factory.mktemp("migration") / "cold")
    run = run_arena(GRID, store, config=CONFIG, cases=shared_cases)
    return store, run, render_arena_matrices(run)


@pytest.fixture()
def v1_store(tmp_path):
    """A scratch copy of the committed v1 fixture (never mutate the repo)."""
    root = tmp_path / "v1"
    shutil.copytree(FIXTURE, root)
    return root


def test_fixture_is_a_pure_v1_layout():
    """The committed fixture must stay manifest-free, or this suite tests
    nothing — regenerate it with v2 artifacts stripped if it ever churns."""
    assert FIXTURE.is_dir()
    assert not (FIXTURE / ResultStore.MANIFEST_NAME).exists()
    assert not (FIXTURE / ResultStore.LEASE_DIR).exists()
    records = list(FIXTURE.rglob("*.json"))
    assert records, "fixture has no records"
    assert all(p.parent.name == p.name[:2] for p in records)


def test_v1_store_resumes_with_zero_executed(cold, shared_cases, v1_store):
    _, reference, text = cold
    run = run_arena(
        GRID, ResultStore(v1_store), config=CONFIG, cases=shared_cases
    )
    assert run.executed == 0
    assert run.loaded == reference.executed
    assert "executed 0 attacks" in run.stats_line()
    assert render_arena_matrices(run) == text


def test_migration_builds_manifest_and_keeps_records_untouched(
    cold, v1_store
):
    cold_store, reference, _ = cold
    before = {
        p.relative_to(v1_store): p.read_bytes()
        for p in v1_store.rglob("*.json")
    }
    store = ResultStore(v1_store)
    # Index access (len here) triggers the in-place rebuild.
    assert len(store) == reference.executed
    manifest = v1_store / ResultStore.MANIFEST_NAME
    assert manifest.is_file()
    assert len(manifest.read_text().splitlines()) == reference.executed
    after = {
        p.relative_to(v1_store): p.read_bytes()
        for p in v1_store.rglob("*.json")
    }
    assert after == before  # migration never rewrites records
    # ...and they are the same records a fresh v2 run produces.
    assert sorted(store.keys()) == sorted(cold_store.keys())
    # The fixture was generated on the dense backend; the sparse kernels
    # agree on edge sets/ASR but wobble score-trace floats at the last
    # ulp, so byte-equality against a fresh run only holds on dense.
    byte_exact = os.environ.get("REPRO_BACKEND", "dense") == "dense"
    for key in store.keys():
        mine = store.path(key).read_bytes()
        cold_bytes = cold_store.path(key).read_bytes()
        if byte_exact:
            assert mine == cold_bytes
        else:
            payload, cold_payload = json.loads(mine), json.loads(cold_bytes)
            assert payload["cell"] == cold_payload["cell"]
            assert payload["victim"] == cold_payload["victim"]
            assert (
                payload["result"]["added_edges"]
                == cold_payload["result"]["added_edges"]
            )


def test_migrated_store_is_a_full_v2_citizen(cold, shared_cases, v1_store):
    """Post-migration stores support the whole v2 surface: O(1) reopen,
    corruption quarantine, and further resumable writes."""
    _, reference, text = cold
    store = ResultStore(v1_store)
    keys = store.keys()
    # Warm reopen reads the manifest, not the shard tree.
    reopened = ResultStore(v1_store)
    assert reopened.keys() == keys
    # Kill one record; the resume heals it and still matches bytes.
    victim_key = keys[0]
    reopened.path(victim_key).unlink()
    healed = run_arena(
        GRID, ResultStore(v1_store), config=CONFIG, cases=shared_cases
    )
    assert healed.executed == 1
    assert healed.loaded == reference.executed - 1
    assert render_arena_matrices(healed) == text
