"""Locality property: subgraph execution equals full-graph execution.

For every attack that supports the batched engine, running on the victim's
extracted k-hop computation subgraph (with degree-deficit corrections) must
return the *same* perturbed edge set — and the same final prediction — as
the classic single-victim full-graph ``attack``.  Seeded small synthetic
graphs make the comparison exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    DICE,
    FGA,
    FGATargeted,
    FeatureFGA,
    GEAttack,
    GEFAttack,
    Nettack,
    VictimSpec,
)


@pytest.fixture(scope="module")
def victims(tiny_graph, trained_model, clean_predictions):
    """Up to three FGA-flippable victims with their derived target labels."""
    degrees = tiny_graph.degrees()
    attack = FGA(trained_model, seed=11)
    found = []
    eligible = np.flatnonzero(
        (clean_predictions == tiny_graph.labels) & (degrees >= 2) & (degrees <= 6)
    )
    for node in eligible:
        node = int(node)
        result = attack.attack(tiny_graph, node, None, int(degrees[node]))
        if result.misclassified:
            found.append(
                VictimSpec(node, int(result.final_prediction), min(3, int(degrees[node])))
            )
        if len(found) >= 3:
            break
    if not found:
        pytest.skip("no flippable victim on the tiny graph")
    return found


def edge_attacks(model):
    return [
        GEAttack(model, seed=0),
        GEAttack(model, seed=0, normalize_penalty=False, lam=20.0),
        GEAttack(model, seed=0, greedy=False),
        FGATargeted(model, seed=0),
        Nettack(model, seed=0),
        DICE(model, seed=0),
    ]


def feature_attacks(model):
    return [
        FeatureFGA(model, seed=0),
        GEFAttack(model, seed=0, inner_steps=2),
    ]


def forced_scene(attack, graph, spec):
    """Locality scene even on the tiny graph (no size cut-off)."""
    return attack.build_locality_scene(
        graph, spec.node, spec.target_label, max_subgraph_fraction=1.01
    )


class TestEdgeAttackParity:
    def test_subgraph_matches_full_graph(self, tiny_graph, trained_model, victims):
        for attack in edge_attacks(trained_model):
            for spec in victims:
                full = attack.attack(
                    tiny_graph, spec.node, spec.target_label, spec.budget
                )
                scene = forced_scene(attack, tiny_graph, spec)
                assert scene is not None, attack.name
                local = attack.attack(
                    tiny_graph,
                    spec.node,
                    spec.target_label,
                    spec.budget,
                    locality=scene,
                )
                assert local.added_edges == full.added_edges, attack.name
                assert local.final_prediction == full.final_prediction
                assert local.original_prediction == full.original_prediction
                assert (
                    local.perturbed_graph.edge_set()
                    == full.perturbed_graph.edge_set()
                )

    def test_scene_view_is_a_proper_subgraph(
        self, tiny_graph, trained_model, victims
    ):
        attack = GEAttack(trained_model, seed=0)
        spec = victims[0]
        scene = forced_scene(attack, tiny_graph, spec)
        view = scene.view(tiny_graph)
        assert view.graph.num_nodes == view.nodes.size <= tiny_graph.num_nodes
        # Local ids map to ascending global ids, with the victim present.
        assert np.all(np.diff(view.nodes) > 0)
        assert view.nodes[view.node] == spec.node
        # The induced subgraph carries the global labels and features.
        assert np.array_equal(view.graph.labels, tiny_graph.labels[view.nodes])

    def test_untargeted_fga_declines_locality(self, tiny_graph, trained_model):
        attack = FGA(trained_model, seed=0)
        assert attack.build_locality_scene(tiny_graph, 0, None) is None

    def test_attack_many_matches_serial_loop(
        self, tiny_graph, trained_model, victims
    ):
        attack = GEAttack(trained_model, seed=0)
        serial = [
            attack.attack(tiny_graph, spec.node, spec.target_label, spec.budget)
            for spec in victims
        ]
        batched = attack.attack_many(tiny_graph, victims)
        assert len(batched) == len(serial)
        for one, many in zip(serial, batched):
            assert many.added_edges == one.added_edges
            assert many.target_node == one.target_node
            assert many.final_prediction == one.final_prediction

    def test_attack_many_accepts_tuples(self, tiny_graph, trained_model, victims):
        attack = FGATargeted(trained_model, seed=0)
        spec = victims[0]
        as_tuple = attack.attack_many(
            tiny_graph, [(spec.node, spec.target_label, spec.budget)]
        )
        as_spec = attack.attack_many(tiny_graph, [spec])
        assert as_tuple[0].added_edges == as_spec[0].added_edges


class TestFeatureAttackParity:
    def test_subgraph_matches_full_graph(self, tiny_graph, trained_model, victims):
        for attack in feature_attacks(trained_model):
            for spec in victims:
                full = attack.attack(
                    tiny_graph, spec.node, spec.target_label, spec.budget
                )
                scene = forced_scene(attack, tiny_graph, spec)
                assert scene is not None, attack.name
                local = attack.attack(
                    tiny_graph,
                    spec.node,
                    spec.target_label,
                    spec.budget,
                    locality=scene,
                )
                assert local.flipped_features == full.flipped_features, attack.name
                assert local.final_prediction == full.final_prediction

    def test_feature_scene_is_victim_neighborhood_only(
        self, tiny_graph, trained_model, victims
    ):
        from repro.graph import k_hop_reach

        attack = FeatureFGA(trained_model, seed=0)
        spec = victims[0]
        scene = forced_scene(attack, tiny_graph, spec)
        view = scene.view(tiny_graph)
        expected = np.flatnonzero(
            k_hop_reach(tiny_graph.adjacency, [spec.node], attack.locality_hops + 1)
        )
        assert np.array_equal(view.nodes, expected)
