"""Unified differential harness: subgraph execution ≡ full-graph execution.

One parametrized equivalence suite over the *entire* attack registry
(``ATTACKS`` ∪ ``EXTENSION_ATTACKS``): for every attack that reports
``supports_locality``, running on the victim's extracted k-hop computation
subgraph (with degree-deficit corrections) must reproduce the serial
full-graph path —

* the same added edge set (and the same perturbed graph),
* the same ASR event (original/final predictions match exactly),
* the same per-step candidate sets, chosen endpoints and candidate scores
  (scores up to float summation order — the only divergence the locality
  contract permits).

The matrix is attack × budget × seed; attacks are built from the registry,
so a newly registered attack is covered by this harness (and by the
interface checks below) with no test edits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    ATTACKS,
    EXTENSION_ATTACKS,
    FEATURE_ATTACKS,
    Attack,
    FGA,
    GEAttack,
    VictimSpec,
)
from repro.explain import PGExplainer
from repro.nn import build_model, train_node_classifier
from repro.obs import metrics

REGISTRY = {**ATTACKS, **EXTENSION_ATTACKS}

#: Constructor overrides that keep the harness laptop-fast; attacks not
#: listed are built as ``cls(model, seed=seed)``.
FAST_KWARGS = {
    "IG-Attack": {"steps": 4},
    "FGA-T&E": {"explainer_epochs": 12},
}

#: Non-default constructions that exercise distinct code paths of a
#: registered attack (one-shot gradient, raw Eq.-7 mixing); they join the
#: differential matrix alongside the registry defaults.
VARIANT_KWARGS = {
    "GEAttack[one-shot]": ("GEAttack", {"greedy": False}),
    "GEAttack[raw-lam]": ("GEAttack", {"normalize_penalty": False, "lam": 20.0}),
}

#: FGA honours a locality scene in its loop (``supports_locality``) but its
#: untargeted ANY candidate policy admits every node, so no victim-bounded
#: scene is ever buildable — its decline is asserted separately in
#: ``TestSceneProtocol``; everything else must actually build a scene.
UNBUILDABLE = {"FGA"}
LOCALITY_NAMES = sorted(
    name
    for name, cls in REGISTRY.items()
    if cls.supports_locality and name not in UNBUILDABLE
) + sorted(VARIANT_KWARGS)
BUDGETS = (1, 3)
SEEDS = (0, 17)


@pytest.fixture(scope="module")
def victims(tiny_graph, trained_model, clean_predictions):
    """Up to two FGA-flippable victims with their derived target labels."""
    degrees = tiny_graph.degrees()
    attack = FGA(trained_model, seed=11)
    found = []
    eligible = np.flatnonzero(
        (clean_predictions == tiny_graph.labels) & (degrees >= 2) & (degrees <= 6)
    )
    for node in eligible:
        node = int(node)
        result = attack.attack(tiny_graph, node, None, int(degrees[node]))
        if result.misclassified:
            found.append(VictimSpec(node, int(result.final_prediction), 3))
        if len(found) >= 2:
            break
    if not found:
        pytest.skip("no flippable victim on the tiny graph")
    return found


@pytest.fixture(scope="module")
def pg_explainer(tiny_graph, trained_model):
    """A small fitted PGExplainer for the GEAttack-PG rows of the matrix."""
    return PGExplainer(trained_model, epochs=6, seed=3).fit(
        tiny_graph, instances=10
    )


def build_attack(name, model, pg_explainer, seed):
    """Instantiate a registry attack (or variant) at harness-speed settings."""
    if name in VARIANT_KWARGS:
        base_name, kwargs = VARIANT_KWARGS[name]
        return REGISTRY[base_name](model, seed=seed, **kwargs)
    cls = REGISTRY[name]
    kwargs = dict(FAST_KWARGS.get(name, {}))
    if name == "GEAttack-PG":
        return cls(model, pg_explainer, seed=seed, **kwargs)
    return cls(model, seed=seed, **kwargs)


def forced_scene(attack, graph, node, target_label):
    """Locality scene even on the tiny graph (no size cut-off)."""
    return attack.build_locality_scene(
        graph, node, target_label, max_subgraph_fraction=1.01
    )


def assert_traces_match(full, local, context):
    """Per-step candidate-score equality (the score-trace contract)."""
    assert len(local.score_trace) == len(full.score_trace), context
    for step, (one, many) in enumerate(zip(full.score_trace, local.score_trace)):
        note = f"{context} step {step}"
        assert np.array_equal(one["candidates"], many["candidates"]), note
        assert one["choice"] == many["choice"], note
        # Exact up to float summation order — the locality docstring's
        # stated tolerance; everything discrete above is bit-equal.
        np.testing.assert_allclose(
            many["scores"], one["scores"], rtol=1e-7, atol=1e-9, err_msg=note
        )


@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", LOCALITY_NAMES)
class TestDifferentialEquivalence:
    def test_subgraph_matches_full_graph(
        self, name, seed, budget, tiny_graph, trained_model, pg_explainer, victims
    ):
        attack = build_attack(name, trained_model, pg_explainer, seed)
        spec = victims[0]
        scene = forced_scene(attack, tiny_graph, spec.node, spec.target_label)
        assert scene is not None, (
            f"{name} declined a locality scene; attacks whose scenes are "
            "unbuildable by construction belong in UNBUILDABLE"
        )
        full = attack.attack(tiny_graph, spec.node, spec.target_label, budget)
        local = attack.attack(
            tiny_graph, spec.node, spec.target_label, budget, locality=scene
        )
        context = f"{name} seed={seed} budget={budget} node={spec.node}"
        # Edge-set equality (and hence graph equality).
        assert local.added_edges == full.added_edges, context
        assert (
            local.perturbed_graph.edge_set() == full.perturbed_graph.edge_set()
        ), context
        # ASR equality: the exact same prediction flip events.
        assert local.original_prediction == full.original_prediction, context
        assert local.final_prediction == full.final_prediction, context
        assert local.misclassified == full.misclassified, context
        assert local.hit_target == full.hit_target, context
        # DICE records removals in history; everyone else leaves it empty.
        assert local.history == full.history, context
        assert_traces_match(full, local, context)


#: Architectures whose layers declare exact locality join the differential
#: matrix; GAT declares ``exact_locality = False`` and is asserted to take
#: the full-graph fallback instead (never silent approximate locality).
EXACT_ARCHS = ("gcn", "sage", "gin")


@pytest.fixture(scope="module")
def arch_cases(tiny_graph, tiny_split, trained_model):
    """Per-architecture trained victims (gcn reuses the session model)."""
    cases = {"gcn": trained_model}
    for arch in ("sage", "gin", "gat"):
        model = build_model(
            arch,
            tiny_graph.num_features,
            12,
            tiny_graph.num_classes,
            np.random.default_rng(7),
            dropout=0.3,
        )
        train_node_classifier(
            model,
            model.normalize(tiny_graph.adjacency),
            tiny_graph.features,
            tiny_graph.labels,
            tiny_split.train,
            tiny_split.val,
            tiny_split.test,
            epochs=60,
            patience=25,
        )
        cases[arch] = model
    return cases


@pytest.fixture(scope="module")
def arch_victims(tiny_graph, arch_cases):
    """One FGA-flippable victim per architecture."""
    degrees = tiny_graph.degrees()
    found = {}
    for arch, model in arch_cases.items():
        predictions = model.predict(
            model.normalize(tiny_graph.adjacency), tiny_graph.features
        )
        attack = FGA(model, seed=11)
        eligible = np.flatnonzero(
            (predictions == tiny_graph.labels)
            & (degrees >= 2)
            & (degrees <= 6)
        )
        for node in eligible:
            node = int(node)
            result = attack.attack(tiny_graph, node, None, int(degrees[node]))
            if result.misclassified:
                found[arch] = VictimSpec(
                    node, int(result.final_prediction), 3
                )
                break
    return found


@pytest.fixture(scope="module")
def arch_pg_explainers(tiny_graph, arch_cases):
    """A small fitted PGExplainer per architecture (GEAttack-PG rows)."""
    return {
        arch: PGExplainer(model, epochs=6, seed=3).fit(
            tiny_graph, instances=10
        )
        for arch, model in arch_cases.items()
    }


@pytest.mark.parametrize("arch", EXACT_ARCHS)
@pytest.mark.parametrize("name", LOCALITY_NAMES)
class TestArchDifferentialEquivalence:
    """The locality contract, adjudicated per (attack × architecture)."""

    def test_subgraph_matches_full_graph(
        self, name, arch, tiny_graph, arch_cases, arch_victims,
        arch_pg_explainers,
    ):
        if arch not in arch_victims:
            pytest.skip(f"no flippable victim for {arch} on the tiny graph")
        model = arch_cases[arch]
        attack = build_attack(name, model, arch_pg_explainers[arch], seed=0)
        spec = arch_victims[arch]
        scene = forced_scene(attack, tiny_graph, spec.node, spec.target_label)
        assert scene is not None, f"{name} declined a {arch} locality scene"
        budget = 2
        full = attack.attack(tiny_graph, spec.node, spec.target_label, budget)
        local = attack.attack(
            tiny_graph, spec.node, spec.target_label, budget, locality=scene
        )
        context = f"{name} arch={arch} node={spec.node}"
        assert local.added_edges == full.added_edges, context
        assert (
            local.perturbed_graph.edge_set() == full.perturbed_graph.edge_set()
        ), context
        assert local.original_prediction == full.original_prediction, context
        assert local.final_prediction == full.final_prediction, context
        assert local.misclassified == full.misclassified, context
        assert local.hit_target == full.hit_target, context
        assert local.history == full.history, context
        assert_traces_match(full, local, context)


@pytest.mark.parametrize("name", LOCALITY_NAMES)
class TestGATLocalityFallback:
    """GAT declares no exact locality: every scene request must visibly
    decline (``locality.arch_fallback``), never silently approximate."""

    def test_scene_declined_and_counted(
        self, name, tiny_graph, arch_cases, arch_victims, arch_pg_explainers
    ):
        if "gat" not in arch_victims:
            pytest.skip("no flippable victim for gat on the tiny graph")
        model = arch_cases["gat"]
        assert model.exact_locality is False
        attack = build_attack(name, model, arch_pg_explainers["gat"], seed=0)
        spec = arch_victims["gat"]
        before = metrics.counters().get("locality.arch_fallback", 0)
        scene = forced_scene(attack, tiny_graph, spec.node, spec.target_label)
        assert scene is None, (
            f"{name} built a locality scene for a GAT victim, whose "
            "attention coefficients are not degree-offset constants"
        )
        assert metrics.counters()["locality.arch_fallback"] == before + 1


def test_gat_full_graph_attack_still_executes(
    tiny_graph, arch_cases, arch_victims
):
    """The fallback path is the ordinary full-graph attack, end to end."""
    if "gat" not in arch_victims:
        pytest.skip("no flippable victim for gat on the tiny graph")
    model = arch_cases["gat"]
    spec = arch_victims["gat"]
    result = GEAttack(model, seed=0, inner_steps=2).attack(
        tiny_graph, spec.node, spec.target_label, 2
    )
    assert result.added_edges
    assert result.original_prediction is not None


class TestRegistryInterface:
    """Every registered attack honours the base interface conventions."""

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_base_interface(self, name):
        cls = REGISTRY[name]
        assert issubclass(cls, Attack), name
        assert isinstance(cls.supports_locality, bool), name
        assert cls.name == name, name
        # attack_many / attack_one / build_locality_scene come from the base
        # class; a subclass shadowing them with incompatible signatures
        # would break the batched engine.
        assert callable(getattr(cls, "attack_many"))
        assert callable(getattr(cls, "attack_one"))

    def test_metattack_attack_many_conventions(
        self, tiny_graph, trained_model, victims
    ):
        """The global-poisoning extension rides the batched engine too."""
        from repro.attacks import Metattack

        attack = Metattack(trained_model, seed=0, train_steps=3)
        assert attack.supports_locality is False
        spec = victims[0]
        serial = attack.attack(tiny_graph, spec.node, spec.target_label, 2)
        batched = attack.attack_many(tiny_graph, [(spec.node, spec.target_label, 2)])
        # Per-victim seeding: identical flips however the call is routed.
        assert batched[0].added_edges == serial.added_edges
        assert batched[0].history == serial.history
        assert batched[0].final_prediction == serial.final_prediction
        assert len(serial.added_edges) + len(serial.history) <= 2

    def test_metattack_without_model_rejects_attack(self, tiny_graph):
        from repro.attacks import Metattack

        with pytest.raises(ValueError, match="model"):
            Metattack(seed=0).attack(tiny_graph, 0, 1, 1)


class TestSceneProtocol:
    def test_scene_view_is_a_proper_subgraph(
        self, tiny_graph, trained_model, victims
    ):
        attack = GEAttack(trained_model, seed=0)
        spec = victims[0]
        scene = forced_scene(attack, tiny_graph, spec.node, spec.target_label)
        view = scene.view(tiny_graph)
        assert view.graph.num_nodes == view.nodes.size <= tiny_graph.num_nodes
        # Local ids map to ascending global ids, with the victim present.
        assert np.all(np.diff(view.nodes) > 0)
        assert view.nodes[view.node] == spec.node
        # The induced subgraph carries the global labels and features.
        assert np.array_equal(view.graph.labels, tiny_graph.labels[view.nodes])

    def test_untargeted_fga_declines_locality(self, tiny_graph, trained_model):
        attack = FGA(trained_model, seed=0)
        assert attack.build_locality_scene(tiny_graph, 0, None) is None

    def test_attack_many_matches_serial_loop(
        self, tiny_graph, trained_model, victims
    ):
        attack = GEAttack(trained_model, seed=0)
        serial = [
            attack.attack(tiny_graph, spec.node, spec.target_label, spec.budget)
            for spec in victims
        ]
        batched = attack.attack_many(tiny_graph, victims)
        assert len(batched) == len(serial)
        for one, many in zip(serial, batched):
            assert many.added_edges == one.added_edges
            assert many.target_node == one.target_node
            assert many.final_prediction == one.final_prediction

    def test_attack_many_accepts_tuples(self, tiny_graph, trained_model, victims):
        from repro.attacks import FGATargeted

        attack = FGATargeted(trained_model, seed=0)
        spec = victims[0]
        as_tuple = attack.attack_many(
            tiny_graph, [(spec.node, spec.target_label, spec.budget)]
        )
        as_spec = attack.attack_many(tiny_graph, [spec])
        assert as_tuple[0].added_edges == as_spec[0].added_edges


class TestFeatureAttackParity:
    """Feature attacks share the same differential contract (flip indices)."""

    @pytest.mark.parametrize("name", sorted(FEATURE_ATTACKS))
    def test_subgraph_matches_full_graph(
        self, name, tiny_graph, trained_model, victims
    ):
        cls = FEATURE_ATTACKS[name]
        kwargs = {"inner_steps": 2} if name == "GEF-Attack" else {}
        attack = cls(trained_model, seed=0, **kwargs)
        for spec in victims:
            full = attack.attack(
                tiny_graph, spec.node, spec.target_label, spec.budget
            )
            scene = forced_scene(attack, tiny_graph, spec.node, spec.target_label)
            assert scene is not None, name
            local = attack.attack(
                tiny_graph,
                spec.node,
                spec.target_label,
                spec.budget,
                locality=scene,
            )
            assert local.flipped_features == full.flipped_features, name
            assert local.final_prediction == full.final_prediction
            assert_traces_match(full, local, f"{name} node={spec.node}")

    def test_feature_scene_is_victim_neighborhood_only(
        self, tiny_graph, trained_model, victims
    ):
        from repro.attacks import FeatureFGA
        from repro.graph import k_hop_reach

        attack = FeatureFGA(trained_model, seed=0)
        spec = victims[0]
        scene = forced_scene(attack, tiny_graph, spec.node, spec.target_label)
        view = scene.view(tiny_graph)
        expected = np.flatnonzero(
            k_hop_reach(tiny_graph.adjacency, [spec.node], attack.locality_hops + 1)
        )
        assert np.array_equal(view.nodes, expected)
