"""Tensor basics: construction, graph bookkeeping, grad-mode semantics."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff.tensor import Tensor


class TestConstruction:
    def test_wraps_array_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64
        assert t.shape == (3,)

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_scalar_item(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_rejects_non_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_constructors(self):
        assert ad.zeros(2, 3).shape == (2, 3)
        assert ad.ones((4,)).data.sum() == 4.0
        assert np.allclose(ad.eye(3).data, np.eye(3))
        assert ad.full((2, 2), 7.0).data.max() == 7.0
        assert ad.arange(5).shape == (5,)
        assert ad.zeros_like(ad.ones(3)).data.sum() == 0.0
        assert ad.ones_like(ad.zeros(3)).data.sum() == 3.0

    def test_len_and_repr(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        assert len(t) == 2
        assert "requires_grad=True" in repr(t)


class TestGraphBookkeeping:
    def test_leaf_has_no_inputs(self):
        t = Tensor([1.0], requires_grad=True)
        assert t.is_leaf

    def test_op_output_records_inputs(self):
        a = Tensor([1.0], requires_grad=True)
        out = a * 2.0
        assert not out.is_leaf
        assert out.requires_grad

    def test_constant_ops_record_nothing(self):
        a = Tensor([1.0])
        out = a * 2.0
        assert out.is_leaf
        assert not out.requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        out = (a * 2.0).detach()
        assert out.is_leaf
        assert not out.requires_grad

    def test_clone_preserves_flag(self):
        a = Tensor([1.0], requires_grad=True)
        b = a.clone()
        assert b.requires_grad
        b.data[0] = 5.0
        assert a.data[0] == 1.0


class TestGradMode:
    def test_no_grad_disables_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with ad.no_grad():
            out = a * 3.0
        assert not out.requires_grad

    def test_nested_modes_restore(self):
        assert ad.is_grad_enabled()
        with ad.no_grad():
            assert not ad.is_grad_enabled()
            with ad.enable_grad():
                assert ad.is_grad_enabled()
            assert not ad.is_grad_enabled()
        assert ad.is_grad_enabled()


class TestGradEngine:
    def test_simple_grad(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        g = ad.grad(y, x)
        assert np.allclose(g.data, [4.0, 6.0])

    def test_grad_accumulates_multiple_uses(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * x + x * 3.0
        g = ad.grad(y.sum(), x)
        assert np.allclose(g.data, [5.0])

    def test_grad_non_scalar_requires_grad_outputs(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            ad.grad(x * 2.0, x)

    def test_grad_with_explicit_grad_outputs(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        g = ad.grad(x * x, x, grad_outputs=Tensor([1.0, 10.0]))
        assert np.allclose(g.data, [2.0, 40.0])

    def test_unused_input_raises_unless_allowed(self):
        x = Tensor([1.0], requires_grad=True)
        z = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).sum()
        with pytest.raises(RuntimeError):
            ad.grad(y, [x, z])
        gx, gz = ad.grad(y, [x, z], allow_unused=True)
        assert gz is None
        assert np.allclose(gx.data, [2.0])

    def test_backward_populates_leaf_grads(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        w = Tensor([3.0, 4.0], requires_grad=True)
        (x * w).sum().backward()
        assert np.allclose(x.grad.data, [3.0, 4.0])
        assert np.allclose(w.grad.data, [1.0, 2.0])

    def test_backward_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad.data, [5.0])

    def test_grad_detached_by_default(self):
        x = Tensor([2.0], requires_grad=True)
        g = ad.grad((x * x).sum(), x)
        assert not g.requires_grad

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1.0
        g = ad.grad(y.sum(), x)
        assert np.allclose(g.data, [1.0])

    def test_grad_tuple_inputs_returns_tuple(self):
        x = Tensor([1.0], requires_grad=True)
        w = Tensor([2.0], requires_grad=True)
        grads = ad.grad((x * w).sum(), [x, w])
        assert isinstance(grads, tuple) and len(grads) == 2
