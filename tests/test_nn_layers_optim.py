"""Layers (Linear/GCNConv/Dropout) and optimizers (SGD/Adam)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import autodiff as ad
from repro.autodiff.tensor import Tensor, grad
from repro.graph import normalize_adjacency
from repro.nn import SGD, Adam, Dropout, GCNConv, Linear
from repro.nn.layers import adjacency_matmul


class TestAdjacencyMatmul:
    def test_sparse_and_dense_agree(self, rng):
        adjacency = sp.random(5, 5, density=0.5, random_state=0, format="csr")
        features = Tensor(rng.standard_normal((5, 3)))
        sparse_out = adjacency_matmul(adjacency, features)
        dense_out = adjacency_matmul(Tensor(adjacency.toarray()), features)
        assert np.allclose(sparse_out.data, dense_out.data)

    def test_dense_path_differentiable_in_adjacency(self, rng):
        adjacency = Tensor(rng.random((4, 4)), requires_grad=True)
        features = Tensor(rng.standard_normal((4, 2)))
        out = adjacency_matmul(adjacency, features).sum()
        g = grad(out, adjacency)
        assert g.shape == (4, 4)


class TestLinear:
    def test_shapes_and_bias(self, rng):
        layer = Linear(3, 5, rng)
        out = layer(np.ones((2, 3)))
        assert out.shape == (2, 5)

    def test_no_bias(self, rng):
        layer = Linear(3, 5, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_glorot_scale(self, rng):
        layer = Linear(100, 100, rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit + 1e-12


class TestGCNConv:
    def test_matches_manual_computation(self, rng):
        conv = GCNConv(3, 2, rng)
        adjacency = sp.eye(4, format="csr")
        features = np.arange(12, dtype=float).reshape(4, 3)
        out = conv(adjacency, features)
        manual = features @ conv.weight.data + conv.bias.data
        assert np.allclose(out.data, manual)

    def test_gradient_reaches_weights(self, rng, tiny_graph):
        conv = GCNConv(tiny_graph.num_features, 4, rng)
        normalized = normalize_adjacency(tiny_graph.adjacency)
        out = conv(normalized, tiny_graph.features).sum()
        g = grad(out, conv.weight)
        assert np.any(g.data != 0)


class TestDropoutModule:
    def test_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.5, rng)

    def test_training_flag(self, rng):
        layer = Dropout(0.9, rng)
        layer.training = False
        out = layer(Tensor(np.ones(50)))
        assert np.allclose(out.data, 1.0)


def quadratic_problem():
    """min ||w - target||² from zero init."""
    from repro.nn.module import Parameter

    target = np.array([1.0, -2.0, 3.0])
    weight = Parameter(np.zeros(3))

    def loss_and_grad():
        loss = ((weight - Tensor(target)) ** 2).sum()
        return loss, grad(loss, [weight])

    return weight, target, loss_and_grad


class TestSGD:
    def test_converges_on_quadratic(self):
        weight, target, step_fn = quadratic_problem()
        optimizer = SGD([weight], lr=0.1)
        for _ in range(100):
            _, grads = step_fn()
            optimizer.step(grads)
        assert np.allclose(weight.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        weight_plain, target, step_plain = quadratic_problem()
        plain = SGD([weight_plain], lr=0.01)
        weight_momentum, _, step_momentum = quadratic_problem()
        momentum = SGD([weight_momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            plain.step(step_plain()[1])
            momentum.step(step_momentum()[1])
        error_plain = np.linalg.norm(weight_plain.data - target)
        error_momentum = np.linalg.norm(weight_momentum.data - target)
        assert error_momentum < error_plain

    def test_weight_decay_shrinks(self):
        from repro.nn.module import Parameter

        weight = Parameter(np.array([10.0]))
        optimizer = SGD([weight], lr=0.1, weight_decay=1.0)
        optimizer.step([Tensor([0.0])])
        assert weight.data[0] < 10.0

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_gradient_count_checked(self):
        weight, _, _ = quadratic_problem()
        optimizer = SGD([weight], lr=0.1)
        with pytest.raises(ValueError):
            optimizer.step([])

    def test_none_gradient_skipped(self):
        weight, _, _ = quadratic_problem()
        before = weight.data.copy()
        SGD([weight], lr=0.1).step([None])
        assert np.array_equal(weight.data, before)


class TestAdam:
    def test_converges_on_quadratic(self):
        weight, target, step_fn = quadratic_problem()
        optimizer = Adam([weight], lr=0.1)
        for _ in range(300):
            _, grads = step_fn()
            optimizer.step(grads)
        assert np.allclose(weight.data, target, atol=1e-2)

    def test_step_size_bounded_by_lr(self):
        from repro.nn.module import Parameter

        weight = Parameter(np.array([0.0]))
        optimizer = Adam([weight], lr=0.01)
        optimizer.step([Tensor([1000.0])])
        # Adam normalizes by the gradient scale: |Δ| ≈ lr.
        assert abs(weight.data[0]) <= 0.011
