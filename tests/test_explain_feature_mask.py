"""Feature-mask explanations (the X_S part of the paper's Eq. 2)."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.explain import Explanation, GNNExplainer
from repro.explain.gnn_explainer import explainer_loss
from repro.graph import k_hop_subgraph


class TestExplainerLossWithFeatureMask:
    def test_feature_mask_changes_loss(
        self, tiny_graph, trained_model, clean_predictions
    ):
        node = 10
        subgraph, _, local = k_hop_subgraph(tiny_graph, node, 2)
        adjacency = Tensor(subgraph.dense_adjacency())
        features = Tensor(subgraph.features)
        mask = Tensor(np.zeros((subgraph.num_nodes,) * 2), requires_grad=True)
        label = int(clean_predictions[node])
        plain = explainer_loss(
            trained_model, adjacency, mask, features, local, label
        ).item()
        gated = explainer_loss(
            trained_model,
            adjacency,
            mask,
            features,
            local,
            label,
            feature_mask=Tensor(np.full(subgraph.num_features, -3.0)),
        ).item()
        assert gated != pytest.approx(plain)

    def test_feature_mask_requires_features(self, trained_model):
        with pytest.raises(ValueError):
            explainer_loss(
                trained_model,
                Tensor(np.eye(3)),
                Tensor(np.zeros((3, 3))),
                None,
                0,
                0,
                feature_mask=Tensor(np.zeros(4)),
            )


class TestFeatureExplanations:
    @pytest.fixture(scope="class")
    def explanation(self, tiny_graph, trained_model):
        explainer = GNNExplainer(
            trained_model, epochs=30, seed=0, explain_features=True
        )
        return explainer.explain_node(tiny_graph, 10)

    def test_feature_weights_present(self, explanation, tiny_graph):
        assert explanation.feature_weights is not None
        assert explanation.feature_weights.shape == (tiny_graph.num_features,)
        assert np.all(
            (explanation.feature_weights > 0) & (explanation.feature_weights < 1)
        )

    def test_top_features(self, explanation):
        top = explanation.top_features(5)
        assert len(top) == 5
        weights = explanation.feature_weights
        assert weights[top[0]] == weights.max()

    def test_structure_only_has_no_feature_weights(
        self, tiny_graph, trained_model
    ):
        explanation = GNNExplainer(trained_model, epochs=5, seed=0).explain_node(
            tiny_graph, 10
        )
        assert explanation.feature_weights is None
        with pytest.raises(ValueError):
            explanation.top_features(3)

    def test_feature_mask_moves_from_init(self, tiny_graph, trained_model):
        explainer = GNNExplainer(
            trained_model, epochs=30, seed=0, explain_features=True
        )
        explanation = explainer.explain_node(tiny_graph, 10)
        # Sigmoid of N(0, 0.1) init is ~0.5 everywhere; training must move it.
        spread = explanation.feature_weights.max() - explanation.feature_weights.min()
        assert spread > 0.01
