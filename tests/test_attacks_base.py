"""Attack infrastructure: candidates, results, the fast dense forward."""

import numpy as np
import pytest

from repro.attacks import CandidatePolicy, DenseGCNForward, candidate_nodes
from repro.attacks.base import AttackResult
from repro.autodiff.tensor import Tensor, no_grad
from repro.graph import normalize_adjacency


class TestCandidatePolicies:
    def test_excludes_self_and_neighbors(self, tiny_graph):
        node = 10
        candidates = candidate_nodes(tiny_graph, node, policy=CandidatePolicy.ANY)
        assert node not in candidates
        assert not set(tiny_graph.neighbors(node).tolist()) & set(
            candidates.tolist()
        )

    def test_target_label_policy_filters(self, tiny_graph):
        label = int(tiny_graph.labels[0])
        candidates = candidate_nodes(tiny_graph, 10, target_label=label)
        assert np.all(tiny_graph.labels[candidates] == label)

    def test_target_label_policy_requires_label(self, tiny_graph):
        with pytest.raises(ValueError):
            candidate_nodes(
                tiny_graph, 10, policy=CandidatePolicy.TARGET_LABEL
            )

    def test_unknown_policy_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            candidate_nodes(tiny_graph, 10, policy="bogus")

    def test_default_policy_follows_label(self, tiny_graph):
        with_label = candidate_nodes(tiny_graph, 10, target_label=0)
        without = candidate_nodes(tiny_graph, 10, target_label=None)
        assert with_label.size <= without.size


class TestAttackResult:
    def test_flags(self, tiny_graph):
        result = AttackResult(
            perturbed_graph=tiny_graph,
            added_edges=[(0, 1)],
            target_node=0,
            target_label=2,
            original_prediction=1,
            final_prediction=2,
        )
        assert result.misclassified
        assert result.hit_target

    def test_untargeted_never_hits_target(self, tiny_graph):
        result = AttackResult(
            perturbed_graph=tiny_graph,
            added_edges=[],
            target_node=0,
            target_label=None,
            original_prediction=1,
            final_prediction=0,
        )
        assert result.misclassified
        assert not result.hit_target


class TestDenseGCNForward:
    def test_matches_model_on_clean_graph(self, tiny_graph, trained_model):
        forward = DenseGCNForward(trained_model, tiny_graph.features)
        adjacency = Tensor(tiny_graph.dense_adjacency())
        fast = forward.logits_from_raw(adjacency)
        normalized = normalize_adjacency(tiny_graph.adjacency)
        trained_model.eval()
        with no_grad():
            reference = trained_model(normalized, Tensor(tiny_graph.features))
        assert np.allclose(fast.data, reference.data, atol=1e-9)

    def test_matches_model_after_perturbation(
        self, tiny_graph, trained_model
    ):
        perturbed = tiny_graph.with_edges_added([(0, 50)])
        forward = DenseGCNForward(trained_model, perturbed.features)
        fast = forward.logits_from_raw(Tensor(perturbed.dense_adjacency()))
        trained_model.eval()
        with no_grad():
            reference = trained_model(
                normalize_adjacency(perturbed.adjacency),
                Tensor(perturbed.features),
            )
        assert np.allclose(fast.data, reference.data, atol=1e-9)

    def test_differentiable_in_adjacency(self, tiny_graph, trained_model):
        from repro.autodiff.tensor import grad

        forward = DenseGCNForward(trained_model, tiny_graph.features)
        adjacency = Tensor(tiny_graph.dense_adjacency(), requires_grad=True)
        out = forward.logits_from_raw(adjacency).sum()
        g = grad(out, adjacency)
        assert g.shape == adjacency.shape
        assert np.any(g.data != 0)
