"""Differential harness for the compute backends: sparse ≡ dense.

The sparse CSR backend must change *how* the hot paths are computed and
nothing else.  Three layers of contract, mirroring the locality suite:

* **kernels** — ``csr_matmat`` survives first- and second-order numeric
  gradcheck (the property GEAttack's bilevel unroll depends on), and the
  guarded inverse sqrt reproduces the scipy ``non-finite → 0`` convention
  so isolated nodes can never leak ``inf``/``nan``;
* **operators** — the sparse normalized adjacency equals the scipy/dense
  one entrywise (including isolated and degree-1 nodes, with and without
  ``degree_offset``), GCN predictions agree exactly, and the candidate
  pair gradient equals the dense symmetrized score row;
* **attacks** — every sparse-enabled attack in the registry produces the
  same edge sets, predictions and (to float tolerance) score traces as
  the dense path, under both full-graph and locality execution.

Backend selection (env var, explicit argument, threading through
``Session``/``prepare_case``/``build_attack``) is covered at the end.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.attacks import ATTACKS, VictimSpec
from repro.autodiff import (
    Backend,
    CSRStructure,
    DenseBackend,
    SparseAttackAdjacency,
    csr_matmat,
    get_backend,
    masked_inverse_sqrt,
)
from repro.autodiff.gradcheck import gradcheck, gradgradcheck
from repro.autodiff.tensor import Tensor, grad
from repro.graph import Graph, normalize_adjacency

#: Registry attacks with sparse kernels (GEAttack-PG and FGA-T&E fall back
#: to dense — their explainer penalties are dense — and RNA/DICE/Metattack
#: have no adjacency-gradient hot path, so the backend is a no-op there).
SPARSE_ATTACKS = ("FGA", "FGA-T", "Nettack", "IG-Attack", "GEAttack")

FAST_KWARGS = {"IG-Attack": {"steps": 4}}

#: Non-default GEAttack constructions exercising its distinct sparse
#: scoring paths (one-shot gradient, raw Eq.-7 mixing, zero lam).
VARIANT_KWARGS = {
    "GEAttack[one-shot]": ("GEAttack", {"greedy": False}),
    "GEAttack[raw-lam]": ("GEAttack", {"normalize_penalty": False, "lam": 20.0}),
    "GEAttack[lam-0]": ("GEAttack", {"lam": 0.0}),
}

MATRIX = list(SPARSE_ATTACKS) + sorted(VARIANT_KWARGS)


def build_pair(name, model, seed=0):
    """(dense attack, sparse attack) of the same registry construction."""
    if name in VARIANT_KWARGS:
        base, kwargs = VARIANT_KWARGS[name]
    else:
        base, kwargs = name, FAST_KWARGS.get(name, {})
    dense = ATTACKS[base](model, seed=seed, **kwargs)
    sparse = ATTACKS[base](model, seed=seed, **kwargs)
    # Post-construction assignment is the build_attack threading convention
    # (subclass constructors stay untouched).  Both sides are pinned so the
    # harness itself is immune to REPRO_BACKEND (the tier1-sparse CI job
    # runs this very suite with the env var set).
    dense.backend = get_backend("dense")
    sparse.backend = get_backend("sparse")
    return dense, sparse


def assert_results_match(dense, sparse, context):
    """Edge sets and predictions exact; traces equal to float tolerance."""
    assert dense.added_edges == sparse.added_edges, context
    assert dense.final_prediction == sparse.final_prediction, context
    assert dense.original_prediction == sparse.original_prediction, context
    assert len(dense.score_trace) == len(sparse.score_trace), context
    for step, (one, two) in enumerate(zip(dense.score_trace, sparse.score_trace)):
        note = f"{context} step {step}"
        assert one["choice"] == two["choice"], note
        assert np.array_equal(one["candidates"], two["candidates"]), note
        assert np.all(np.isfinite(two["scores"])), note
        np.testing.assert_allclose(
            two["scores"], one["scores"], rtol=1e-6, atol=1e-10, err_msg=note
        )


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def star_structure():
    """A small fixed CSR pattern (4×4, mixed row sizes, one empty row)."""
    matrix = sp.csr_matrix(
        np.array(
            [
                [0.0, 1.0, 1.0, 0.0],
                [1.0, 0.0, 0.0, 1.0],
                [0.0, 0.0, 0.0, 0.0],
                [0.0, 1.0, 0.0, 1.0],
            ]
        )
    )
    return CSRStructure(matrix.shape, matrix.indptr, matrix.indices), matrix


class TestCSRMatmat:
    def test_forward_matches_scipy(self, rng):
        structure, matrix = star_structure()
        values = Tensor(rng.standard_normal(structure.nnz))
        dense = Tensor(rng.standard_normal((4, 3)))
        reference = (
            sp.csr_matrix(
                (values.data, structure.indices, structure.indptr), shape=(4, 4)
            )
            @ dense.data
        )
        np.testing.assert_array_equal(
            csr_matmat(structure, values, dense).data, reference
        )

    def test_gradcheck_both_operands(self, rng):
        structure, _ = star_structure()
        values = Tensor(rng.standard_normal(structure.nnz), requires_grad=True)
        dense = Tensor(rng.standard_normal((4, 3)), requires_grad=True)

        def loss(values, dense):
            out = csr_matmat(structure, values, dense)
            return (out * out).sum()

        assert gradcheck(loss, (values, dense))

    def test_gradgradcheck_both_operands(self, rng):
        """Second order — what GEAttack's unrolled explainer differentiates."""
        structure, _ = star_structure()
        values = Tensor(rng.standard_normal(structure.nnz), requires_grad=True)
        dense = Tensor(rng.standard_normal((4, 2)), requires_grad=True)

        def loss(values, dense):
            out = csr_matmat(structure, values, dense)
            return (out * out * out).sum()

        assert gradgradcheck(loss, (values, dense))


class TestMaskedInverseSqrt:
    def test_zero_degree_maps_to_exact_zero(self):
        degrees = Tensor(np.array([4.0, 1.0, 0.0, 9.0]))
        result = masked_inverse_sqrt(degrees)
        np.testing.assert_array_equal(result.data, [0.5, 1.0, 0.0, 1.0 / 3.0])
        assert np.all(np.isfinite(result.data))

    def test_gradient_is_zero_at_masked_entries(self):
        degrees = Tensor(np.array([4.0, 0.0, 1.0]), requires_grad=True)
        gradient = grad(masked_inverse_sqrt(degrees).sum(), degrees).data
        assert gradient[1] == 0.0
        assert np.all(np.isfinite(gradient))
        np.testing.assert_allclose(gradient[0], -0.5 * 4.0 ** -1.5)


# ---------------------------------------------------------------------------
# Operators — normalization with isolated / degree-1 nodes (satellite of the
# sparse hardening: 1/sqrt(0) must never reach the scores)
# ---------------------------------------------------------------------------


def boundary_graph():
    """7 nodes: a path+triangle core, degree-1 node 5, isolated node 6."""
    adjacency = np.zeros((7, 7))
    for u, v in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]:
        adjacency[u, v] = adjacency[v, u] = 1.0
    rng = np.random.default_rng(9)
    return Graph(adjacency, rng.random((7, 5)), [0, 1, 0, 1, 0, 1, 0])


class TestSparseNormalization:
    def test_matches_scipy_with_candidates_closed(self):
        graph = boundary_graph()
        handle = SparseAttackAdjacency(graph, 0, np.array([4, 6], dtype=np.int64))
        normalized = handle.normalized()
        rebuilt = sp.csr_matrix(
            (
                normalized.values.data,
                handle.structure.indices,
                handle.structure.indptr,
            ),
            shape=(7, 7),
        ).toarray()
        reference = normalize_adjacency(graph.adjacency).toarray()
        assert np.all(np.isfinite(rebuilt))
        np.testing.assert_allclose(rebuilt, reference, atol=1e-12)

    def test_matches_scipy_with_candidate_open_to_isolated_node(self):
        """Opening an edge to the isolated node re-derives both degrees."""
        graph = boundary_graph()
        handle = SparseAttackAdjacency(graph, 0, np.array([4, 6], dtype=np.int64))
        handle.values.data[handle.candidate_slice] = np.array([0.0, 1.0])
        rebuilt = sp.csr_matrix(
            (
                handle.normalized().values.data,
                handle.structure.indices,
                handle.structure.indptr,
            ),
            shape=(7, 7),
        ).toarray()
        perturbed = graph.adjacency.toarray().copy()
        perturbed[0, 6] = perturbed[6, 0] = 1.0
        reference = normalize_adjacency(perturbed).toarray()
        assert np.all(np.isfinite(rebuilt))
        np.testing.assert_allclose(rebuilt, reference, atol=1e-12)

    def test_degree_offset_matches_scipy(self):
        graph = boundary_graph()
        offset = np.array([1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0])
        handle = SparseAttackAdjacency(graph, 1, np.array([3], dtype=np.int64))
        rebuilt = sp.csr_matrix(
            (
                handle.normalized(degree_offset=offset).values.data,
                handle.structure.indices,
                handle.structure.indptr,
            ),
            shape=(7, 7),
        ).toarray()
        reference = normalize_adjacency(
            graph.adjacency, degree_offset=offset
        ).toarray()
        np.testing.assert_allclose(rebuilt, reference, atol=1e-12)

    def test_candidate_gradient_equals_dense_symmetrized_row(self):
        """∂L/∂pair == (g + gᵀ)[victim, candidate] — the scoring identity."""
        from repro.graph import normalize_adjacency_tensor

        graph = boundary_graph()
        victim, candidates = 0, np.array([3, 4, 6], dtype=np.int64)
        weight = np.random.default_rng(3).standard_normal((7, 7))

        handle = SparseAttackAdjacency(graph, victim, candidates)
        sparse_loss = (
            handle.normalized().matmul(Tensor(weight)) * Tensor(weight)
        ).sum()
        sparse_row = handle.candidate_gradients(grad(sparse_loss, handle.values))

        leaf = Tensor(graph.dense_adjacency(), requires_grad=True)
        dense_loss = (
            (normalize_adjacency_tensor(leaf) @ Tensor(weight)) * Tensor(weight)
        ).sum()
        g = grad(dense_loss, leaf).data
        dense_row = (g + g.T)[victim, candidates]

        np.testing.assert_allclose(sparse_row, dense_row, rtol=1e-9, atol=1e-12)


class TestModelForward:
    def test_gcn_predictions_agree(self, tiny_graph, trained_model):
        handle = SparseAttackAdjacency(
            tiny_graph, 0, np.array([], dtype=np.int64)
        )
        dense_logits = trained_model(
            normalize_adjacency(tiny_graph.adjacency),
            Tensor(tiny_graph.features),
        ).data
        sparse_logits = trained_model(
            handle.normalized(), Tensor(tiny_graph.features)
        ).data
        np.testing.assert_allclose(
            sparse_logits, dense_logits, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_array_equal(
            sparse_logits.argmax(axis=1), dense_logits.argmax(axis=1)
        )


# ---------------------------------------------------------------------------
# Attacks — registry-wide dense ≡ sparse
# ---------------------------------------------------------------------------


class TestAttackDifferential:
    @pytest.mark.parametrize("name", MATRIX)
    def test_full_graph_equivalence(
        self, name, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        budget = min(budget, 3)
        label = None if name == "FGA" else target_label
        dense, sparse = build_pair(name, trained_model, seed=23)
        assert not dense.backend.is_sparse and sparse.backend.is_sparse
        assert_results_match(
            dense.attack(tiny_graph, node, label, budget),
            sparse.attack(tiny_graph, node, label, budget),
            f"{name} full-graph",
        )

    @pytest.mark.parametrize("name", ("FGA-T", "Nettack", "GEAttack"))
    def test_locality_equivalence(
        self, name, tiny_graph, trained_model, flippable_victim
    ):
        """Sparse kernels compose with subgraph execution and its offsets."""
        node, target_label, budget = flippable_victim
        budget = min(budget, 2)
        dense, sparse = build_pair(name, trained_model, seed=29)
        results = []
        for attack in (dense, sparse):
            scene = attack.build_locality_scene(
                tiny_graph, node, target_label, max_subgraph_fraction=1.01
            )
            assert scene is not None
            results.append(
                attack.attack(tiny_graph, node, target_label, budget, locality=scene)
            )
        assert_results_match(results[0], results[1], f"{name} locality")

    def test_attack_many_equivalence(
        self, tiny_graph, trained_model, flippable_victim
    ):
        """The batched engine path (what Session/arena actually call)."""
        node, target_label, _ = flippable_victim
        dense, sparse = build_pair("FGA-T", trained_model, seed=31)
        spec = VictimSpec(node, target_label, 2)
        one = dense.attack_many(tiny_graph, [spec])[0]
        two = sparse.attack_many(tiny_graph, [spec])[0]
        assert_results_match(one, two, "FGA-T attack_many")


# ---------------------------------------------------------------------------
# Selection and threading
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_default_is_dense(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert get_backend().name == "dense"
        assert not get_backend().is_sparse

    def test_env_var_selects_sparse(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sparse")
        assert get_backend().name == "sparse"
        # An explicit argument wins over the environment.
        assert get_backend("dense").name == "dense"

    def test_backends_are_singletons(self):
        assert get_backend("sparse") is get_backend("SPARSE")
        assert get_backend(get_backend("dense")) is get_backend("dense")
        assert isinstance(get_backend("dense"), DenseBackend)
        assert isinstance(get_backend("dense"), Backend)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown compute backend 'gpu'"):
            get_backend("gpu")

    def test_attack_constructor_accepts_backend(self, trained_model, monkeypatch):
        attack = ATTACKS["FGA-T"](trained_model, backend="sparse")
        assert attack.backend.is_sparse
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert not ATTACKS["FGA-T"](trained_model).backend.is_sparse

    def test_build_attack_threads_case_backend(
        self, tiny_graph, trained_model, clean_predictions
    ):
        from repro.api.registry import build_attack
        from repro.api.session import Session
        from repro.experiments import SCALE_PRESETS
        from repro.experiments.pipeline import PreparedCase

        config = SCALE_PRESETS["smoke"]
        case = PreparedCase(
            graph=tiny_graph,
            split=None,
            model=trained_model,
            probabilities=np.eye(tiny_graph.num_classes)[clean_predictions],
            predictions=clean_predictions,
            test_accuracy=1.0,
            config=config,
            seed=0,
            backend="sparse",
        )
        assert build_attack("FGA-T", case, config).backend.is_sparse
        # An explicit argument beats the case's threaded preference.
        assert not build_attack(
            "FGA-T", case, config, backend="dense"
        ).backend.is_sparse
        # Session carries the preference into every case it prepares.
        assert Session(config=config, backend="sparse").backend == "sparse"
