"""Detection and attack-success metrics against hand-computed values."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    attack_success_rate,
    attack_success_rate_targeted,
    f1_at_k,
    ndcg_at_k,
    precision_at_k,
    prediction_margin,
    recall_at_k,
)


RANKED = [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]


class TestPrecisionRecall:
    def test_perfect_detection(self):
        assert precision_at_k(RANKED, RANKED[:2], 2) == 1.0
        assert recall_at_k(RANKED, RANKED[:2], 2) == 1.0

    def test_zero_detection(self):
        assert precision_at_k(RANKED, [(9, 10)], 5) == 0.0
        assert recall_at_k(RANKED, [(9, 10)], 5) == 0.0

    def test_partial(self):
        adversarial = [(0, 2), (0, 9)]
        assert precision_at_k(RANKED, adversarial, 3) == pytest.approx(1 / 3)
        assert recall_at_k(RANKED, adversarial, 3) == pytest.approx(0.5)

    def test_canonicalization(self):
        assert precision_at_k([(1, 0)], [(0, 1)], 1) == 1.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(RANKED, RANKED, 0)

    def test_recall_empty_adversarial_is_nan(self):
        assert np.isnan(recall_at_k(RANKED, [], 3))


class TestF1:
    def test_harmonic_mean(self):
        adversarial = [(0, 1), (0, 9)]
        precision = precision_at_k(RANKED, adversarial, 2)  # 1/2
        recall = recall_at_k(RANKED, adversarial, 2)  # 1/2
        assert f1_at_k(RANKED, adversarial, 2) == pytest.approx(
            2 * precision * recall / (precision + recall)
        )

    def test_zero_when_no_overlap(self):
        assert f1_at_k(RANKED, [(9, 10)], 3) == 0.0


class TestNDCG:
    def test_hit_at_rank_one_is_best(self):
        first = ndcg_at_k(RANKED, [(0, 1)], 5)
        last = ndcg_at_k(RANKED, [(0, 5)], 5)
        assert first == 1.0
        assert last < first

    def test_known_value_rank_two(self):
        # single adversarial edge at rank 2: DCG=1/log2(3), IDCG=1
        expected = 1.0 / np.log2(3)
        assert ndcg_at_k(RANKED, [(0, 2)], 5) == pytest.approx(expected)

    def test_all_relevant_is_one(self):
        assert ndcg_at_k(RANKED, RANKED, 5) == pytest.approx(1.0)

    def test_empty_adversarial_is_nan(self):
        assert np.isnan(ndcg_at_k(RANKED, [], 5))

    def test_outside_top_k_scores_zero(self):
        assert ndcg_at_k(RANKED, [(0, 5)], 3) == 0.0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=4), st.integers(min_value=1, max_value=5))
def test_ndcg_monotone_in_rank(position, k):
    """Moving the single adversarial edge earlier never lowers NDCG@K."""
    edge = RANKED[position]
    score = ndcg_at_k(RANKED, [edge], k)
    if position > 0:
        better = ndcg_at_k(RANKED, [RANKED[position - 1]], k)
        assert better >= score


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=4), min_size=1))
def test_precision_recall_f1_bounds(positions):
    adversarial = [RANKED[i] for i in positions]
    for k in (1, 3, 5):
        p = precision_at_k(RANKED, adversarial, k)
        r = recall_at_k(RANKED, adversarial, k)
        f = f1_at_k(RANKED, adversarial, k)
        assert 0.0 <= p <= 1.0
        assert 0.0 <= r <= 1.0
        assert min(p, r) - 1e-12 <= f <= max(p, r) + 1e-12


class FakeResult:
    def __init__(self, misclassified, hit_target):
        self.misclassified = misclassified
        self.hit_target = hit_target


class TestSuccessRates:
    def test_asr(self):
        results = [FakeResult(True, False), FakeResult(False, False)]
        assert attack_success_rate(results) == 0.5

    def test_asr_t(self):
        results = [FakeResult(True, True), FakeResult(True, False)]
        assert attack_success_rate_targeted(results) == 0.5

    def test_empty_is_nan(self):
        assert np.isnan(attack_success_rate([]))
        assert np.isnan(attack_success_rate_targeted([]))


class TestMargin:
    def test_confident_correct(self):
        assert prediction_margin([0.8, 0.1, 0.1], 0) == pytest.approx(0.7)

    def test_negative_when_losing(self):
        assert prediction_margin([0.2, 0.8], 0) == pytest.approx(-0.6)
