"""Degenerate-input hardening for the detection metrics.

The arena feeds :func:`repro.metrics.binary_auc` whatever a defense's
flags happen to be — including an empty victim set, a constant scorer
(``NoDefense``), or a cell where every victim is attacked (single-class
labels).  All of those must yield *defined* values the NaN-aware
aggregation can drop, never an exception.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import binary_auc, detection_report


class _EmptyExplanation:
    def ranking(self):
        return []


class TestBinaryAUC:
    def test_perfect_separation(self):
        assert binary_auc([0.9, 0.8, 0.1, 0.2], [1, 1, 0, 0]) == 1.0

    def test_reversed_separation(self):
        assert binary_auc([0.1, 0.2, 0.9, 0.8], [1, 1, 0, 0]) == 0.0

    def test_constant_scores_are_chance(self):
        """NoDefense flags everything 0.0 → AUC must be exactly 0.5."""
        assert binary_auc([0.0] * 6, [1, 1, 1, 0, 0, 0]) == 0.5

    def test_partial_ties_average_ranks(self):
        # scores [1, 1, 0]: the positive ties one negative → rank 2.5.
        assert binary_auc([1.0, 1.0, 0.0], [1, 0, 0]) == pytest.approx(0.75)

    def test_known_mixed_value(self):
        auc = binary_auc([0.9, 0.3, 0.8, 0.1], [1, 1, 0, 0])
        assert auc == pytest.approx(0.75)  # 3 of 4 pairs concordant

    # -- degenerate inputs return defined values, never raise ---------------
    def test_empty_flag_set_is_nan(self):
        assert np.isnan(binary_auc([], []))

    def test_all_positive_labels_is_nan(self):
        assert np.isnan(binary_auc([0.4, 0.9], [1, 1]))

    def test_all_negative_labels_is_nan(self):
        assert np.isnan(binary_auc([0.4, 0.9], [0, 0]))

    def test_single_item_is_nan(self):
        assert np.isnan(binary_auc([0.7], [1]))

    def test_misaligned_inputs_raise(self):
        with pytest.raises(ValueError, match="align"):
            binary_auc([0.1, 0.2], [1])

    def test_accepts_generators(self):
        assert binary_auc(iter([1.0, 0.0]), iter([True, False])) == 1.0

    def test_numpy_inputs(self):
        scores = np.array([0.9, 0.1])
        labels = np.array([True, False])
        assert binary_auc(scores, labels) == 1.0


class TestDetectionReportDegenerate:
    def test_empty_explanation_is_defined(self):
        """A victim with no ranked edges yields finite/NaN values, no raise."""
        report = detection_report(_EmptyExplanation(), [(0, 1)], k=15)
        assert report["precision"] == 0.0
        assert report["recall"] == 0.0
        assert report["f1"] == 0.0
        assert report["ndcg"] == 0.0

    def test_no_adversarial_edges_is_nan_not_error(self):
        report = detection_report(_EmptyExplanation(), [], k=15)
        assert np.isnan(report["recall"])
        assert np.isnan(report["ndcg"])
