"""Second-order differentiation — the property GEAttack's bilevel loop needs."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff import ops
from repro.autodiff.gradcheck import gradgradcheck, numeric_grad
from repro.autodiff.tensor import Tensor


def make(shape, seed=0, scale=0.5, positive=False):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape) * scale
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestGradGrad:
    def test_polynomial(self):
        gradgradcheck(lambda a: (a * a * a).sum(), [make((4,))])

    def test_matmul_chain(self):
        gradgradcheck(
            lambda a, b: ((a @ b) * (a @ b)).sum(),
            [make((2, 3)), make((3, 2), 1)],
        )

    def test_sigmoid(self):
        gradgradcheck(lambda a: ops.sigmoid(a).sum() ** 2, [make((3,))])

    def test_tanh(self):
        gradgradcheck(lambda a: (ops.tanh(a) * ops.tanh(a)).sum(), [make((3,))])

    def test_exp_log(self):
        gradgradcheck(
            lambda a: ops.log(ops.exp(a) + 1.0).sum(), [make((4,))]
        )

    def test_log_softmax(self):
        gradgradcheck(
            lambda a: (ad.log_softmax(a, axis=-1) ** 2).sum(), [make((2, 3))]
        )

    def test_cross_entropy(self):
        targets = np.array([0, 2])
        gradgradcheck(lambda a: ad.cross_entropy(a, targets), [make((2, 3))])

    def test_division(self):
        gradgradcheck(
            lambda a, b: (a / b).sum() ** 2,
            [make((3,)), make((3,), 1, positive=True)],
        )

    def test_getitem_scatter(self):
        idx = np.array([0, 2])
        gradgradcheck(lambda a: (a[idx] * a[idx]).sum(), [make((4,))])

    def test_normalized_adjacency(self):
        from repro.graph.utils import normalize_adjacency_tensor

        base = np.array([[0.0, 1.0, 0.5], [1.0, 0.0, 0.2], [0.5, 0.2, 0.0]])
        adjacency = Tensor(base, requires_grad=True)
        gradgradcheck(
            lambda a: (normalize_adjacency_tensor(a) ** 2).sum(), [adjacency]
        )


class TestCreateGraphSemantics:
    def test_gradient_of_gradient_chains(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x**4).sum()
        g1 = ad.grad(y, x, create_graph=True)  # 4x^3 = 32
        g2 = ad.grad(g1.sum(), x, create_graph=True)  # 12x^2 = 48
        g3 = ad.grad(g2.sum(), x)  # 24x = 48
        assert g1.item() == pytest.approx(32.0)
        assert g2.item() == pytest.approx(48.0)
        assert g3.item() == pytest.approx(48.0)

    def test_without_create_graph_gradients_are_constants(self):
        x = Tensor([2.0], requires_grad=True)
        g = ad.grad((x**2).sum(), x)
        assert not g.requires_grad

    def test_with_create_graph_gradients_require_grad(self):
        x = Tensor([2.0], requires_grad=True)
        g = ad.grad((x**2).sum(), x, create_graph=True)
        assert g.requires_grad


class TestBilevelUnroll:
    """Differentiating through an inner gradient-descent loop (GEAttack's core)."""

    @staticmethod
    def outer_value(theta_data, steps=4, lr=0.3):
        theta = Tensor(theta_data, requires_grad=True)
        mask = Tensor(np.zeros_like(theta_data), requires_grad=True)
        for _ in range(steps):
            inner = ((ops.sigmoid(mask) * theta - 1.0) ** 2).sum()
            step = ad.grad(inner, mask, create_graph=True)
            mask = mask - lr * step
        outer = (ops.sigmoid(mask) * theta).sum()
        return outer, theta

    def test_unrolled_gradient_matches_numeric(self):
        data = np.array([1.2, -0.8, 0.4])
        outer, theta = self.outer_value(data)
        analytic = ad.grad(outer, theta).data

        def scalar(values):
            out, _ = self.outer_value(values.data if isinstance(values, Tensor) else values)
            return out

        numeric = numeric_grad(
            lambda t: scalar(t), [Tensor(data.copy(), requires_grad=True)], 0
        )
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_more_inner_steps_changes_gradient(self):
        data = np.array([1.2, -0.8])
        out1, theta1 = self.outer_value(data, steps=1)
        out5, theta5 = self.outer_value(data, steps=5)
        g1 = ad.grad(out1, theta1).data
        g5 = ad.grad(out5, theta5).data
        assert not np.allclose(g1, g5)

    def test_inner_loop_memory_is_freed(self):
        # A long unroll should complete without error (graph stays a DAG of
        # reference-counted closures; nothing global accumulates).
        data = np.full(4, 0.3)
        outer, theta = self.outer_value(data, steps=40, lr=0.05)
        g = ad.grad(outer, theta)
        assert np.all(np.isfinite(g.data))
