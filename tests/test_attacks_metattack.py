"""Metattack extension: meta-gradient poisoning through unrolled training."""

import numpy as np
import pytest

from repro.attacks import Metattack
from repro.datasets import CitationSpec, generate_citation_graph, random_split
from repro.graph import normalize_adjacency
from repro.nn import GCN, train_node_classifier


@pytest.fixture(scope="module")
def poison_setup():
    spec = CitationSpec(
        num_nodes=70,
        num_edges=150,
        num_classes=3,
        num_features=24,
        topic_words_per_class=6,
        topic_word_probability=0.35,
        name="poison-tiny",
    )
    graph = generate_citation_graph(spec, seed=9)
    split = random_split(graph.num_nodes, seed=10, train_fraction=0.3)
    return graph, split


class TestPoisoning:
    def test_budget_and_flip_bookkeeping(self, poison_setup):
        graph, split = poison_setup
        attack = Metattack(train_steps=6, seed=0)
        poisoned, flipped = attack.poison(graph, split.train, budget=4)
        assert len(flipped) <= 4
        difference = (poisoned.adjacency != graph.adjacency).nnz // 2
        assert difference == len(flipped)

    def test_flips_are_canonical_pairs(self, poison_setup):
        graph, split = poison_setup
        _, flipped = Metattack(train_steps=6, seed=0).poison(
            graph, split.train, budget=3
        )
        for u, v in flipped:
            assert u < v

    def test_meta_gradient_degrades_training(self, poison_setup):
        """Poisoned training should hurt test accuracy vs the clean graph."""
        graph, split = poison_setup
        attack = Metattack(train_steps=8, seed=0)
        poisoned, flipped = attack.poison(
            graph, split.train, budget=max(6, graph.num_edges // 12)
        )
        if not flipped:
            pytest.skip("no positive-score flips on this fixture")

        def fit_and_score(g):
            rng = np.random.default_rng(11)
            model = GCN(g.num_features, 8, g.num_classes, rng, dropout=0.0)
            result = train_node_classifier(
                model,
                normalize_adjacency(g.adjacency),
                g.features,
                g.labels,
                split.train,
                split.val,
                split.test,
                epochs=100,
                patience=100,
            )
            return result.test_accuracy

        clean_accuracy = fit_and_score(graph)
        poisoned_accuracy = fit_and_score(poisoned)
        assert poisoned_accuracy <= clean_accuracy + 0.02

    def test_self_training_vs_train_only_objective(self, poison_setup):
        graph, split = poison_setup
        meta_self = Metattack(train_steps=5, self_training=True, seed=0)
        meta_train = Metattack(train_steps=5, self_training=False, seed=0)
        _, flips_self = meta_self.poison(graph, split.train, budget=2)
        _, flips_train = meta_train.poison(graph, split.train, budget=2)
        # Both objectives must act (they may coincide on tiny graphs).
        assert flips_self and flips_train
