"""Module system: parameter discovery, modes, state dict round-trips."""

import numpy as np
import pytest

from repro.nn import GCN, MLP, Linear, Module, Parameter, Sequential


class Composite(Module):
    def __init__(self, rng):
        super().__init__()
        self.encoder = Linear(4, 3, rng)
        self.heads = [Linear(3, 2, rng), Linear(3, 2, rng)]
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        hidden = self.encoder(x)
        return self.heads[0](hidden) * self.scale


class TestTraversal:
    def test_named_parameters_cover_nested(self, rng):
        model = Composite(rng)
        names = dict(model.named_parameters())
        assert "encoder.weight" in names
        assert "heads.0.bias" in names
        assert "heads.1.weight" in names
        assert "scale" in names

    def test_parameters_count(self, rng):
        model = Composite(rng)
        # encoder W+b, two heads W+b each, scale = 7
        assert len(model.parameters()) == 7

    def test_modules_iterates_children(self, rng):
        model = Composite(rng)
        assert len(list(model.modules())) == 4  # self + encoder + 2 heads


class TestModes:
    def test_train_eval_propagates(self, rng):
        model = GCN(4, 3, 2, rng)
        model.eval()
        assert not model.dropout.training
        model.train()
        assert model.dropout.training

    def test_zero_grad(self, rng):
        model = Composite(rng)
        for param in model.parameters():
            param.grad = param.clone()
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_round_trip(self, rng):
        model = Composite(rng)
        state = model.state_dict()
        for param in model.parameters():
            param.data = param.data + 1.0
        model.load_state_dict(state)
        restored = model.state_dict()
        for key in state:
            assert np.array_equal(state[key], restored[key])

    def test_state_dict_copies(self, rng):
        model = Composite(rng)
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.state_dict()["scale"][0] == 1.0

    def test_missing_key_raises(self, rng):
        model = Composite(rng)
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self, rng):
        model = Composite(rng)
        state = model.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        model = Composite(rng)
        state = model.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestSequential:
    def test_applies_in_order(self, rng):
        from repro.nn import ReLU

        seq = Sequential(Linear(3, 4, rng), ReLU(), Linear(4, 2, rng))
        out = seq(np.ones((5, 3)))
        assert out.shape == (5, 2)
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)


class TestMLP:
    def test_requires_two_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_forward_shape(self, rng):
        mlp = MLP([4, 8, 3], rng)
        assert mlp(np.ones((6, 4))).shape == (6, 3)
