"""The graph/utils memoization layer: hits, sharing, and invalidation.

The cache contract: ``Graph`` objects are immutable, so derived quantities
(normalized adjacency, degrees, k-hop frontiers, predictions) are memoized
against the graph object itself.  Perturbation returns a *new* graph, which
is a new cache key — a post-attack evaluation can never see the clean
graph's stale operator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    cached_degrees,
    cached_k_hop_nodes,
    cached_normalized_adjacency,
    cached_reach,
    graph_cache_stats,
    k_hop_nodes,
    k_hop_reach,
    normalize_adjacency,
    reset_graph_cache,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_graph_cache()
    yield
    reset_graph_cache()


def hits_and_misses():
    stats = graph_cache_stats()
    return stats["hits"], stats["misses"]


class TestCacheHits:
    def test_normalized_adjacency_hits_on_repeat(self, tiny_graph):
        first = cached_normalized_adjacency(tiny_graph)
        hits0, misses0 = hits_and_misses()
        second = cached_normalized_adjacency(tiny_graph)
        hits1, misses1 = hits_and_misses()
        assert second is first  # the very same object, not a recompute
        assert hits1 == hits0 + 1 and misses1 == misses0
        dense_expected = normalize_adjacency(tiny_graph.adjacency).toarray()
        assert np.allclose(first.toarray(), dense_expected)

    def test_degrees_hit_on_repeat(self, tiny_graph):
        first = cached_degrees(tiny_graph)
        second = cached_degrees(tiny_graph)
        assert second is first
        assert np.array_equal(first, tiny_graph.degrees())

    def test_k_hop_nodes_keyed_per_node_and_depth(self, tiny_graph):
        a = cached_k_hop_nodes(tiny_graph, 0, 2)
        b = cached_k_hop_nodes(tiny_graph, 0, 2)
        c = cached_k_hop_nodes(tiny_graph, 0, 1)
        assert b is a
        assert not np.array_equal(a, c) or a.size == c.size
        assert np.array_equal(a, k_hop_nodes(tiny_graph.adjacency, 0, 2))

    def test_reach_frontier_shared_by_key(self, tiny_graph):
        seeds = np.flatnonzero(tiny_graph.labels == 0)
        first = cached_reach(tiny_graph, ("label", 0), seeds, 1)
        second = cached_reach(tiny_graph, ("label", 0), seeds, 1)
        assert second is first
        assert np.array_equal(
            first, k_hop_reach(tiny_graph.adjacency, seeds, 1)
        )


class TestInvalidation:
    def test_perturbed_graph_is_a_fresh_key(self, tiny_graph):
        clean = cached_normalized_adjacency(tiny_graph)
        u, v = 0, tiny_graph.num_nodes - 1
        if tiny_graph.has_edge(u, v):
            pytest.skip("unlucky edge pick")
        perturbed = tiny_graph.with_edges_added([(u, v)])
        corrupted = cached_normalized_adjacency(perturbed)
        # The new operator reflects the adversarial edge...
        assert corrupted[u, v] != 0.0
        # ...and the clean graph's cached operator is untouched.
        assert clean[u, v] == 0.0
        assert cached_normalized_adjacency(tiny_graph) is clean

    def test_edge_removal_also_invalidates(self, tiny_graph):
        u, v = sorted(tiny_graph.edge_set())[0]
        cached_degrees(tiny_graph)
        pruned = tiny_graph.with_edges_removed([(u, v)])
        degrees = cached_degrees(pruned)
        assert degrees[u] == tiny_graph.degrees()[u] - 1
        assert cached_degrees(tiny_graph)[u] == tiny_graph.degrees()[u]

    def test_no_stale_prediction_after_attack(self, tiny_graph, trained_model):
        """Attack.predict on the perturbed graph must not reuse clean logits."""
        from repro.attacks import RandomAttack

        attack = RandomAttack(trained_model, seed=0)
        clean = attack.predict(tiny_graph)
        assert np.array_equal(attack.predict(tiny_graph), clean)  # cache hit
        result = attack.attack(tiny_graph, 0, None, 3)
        if result.added_edges:
            perturbed_predictions = attack.predict(result.perturbed_graph)
            direct = normalize_adjacency(result.perturbed_graph.adjacency)
            from repro.autodiff.tensor import Tensor, no_grad

            with no_grad():
                logits = trained_model(
                    direct, Tensor(result.perturbed_graph.features)
                )
            assert np.array_equal(
                perturbed_predictions, logits.data.argmax(axis=1)
            )


class TestStats:
    def test_reset_zeroes_counters(self, tiny_graph):
        cached_degrees(tiny_graph)
        reset_graph_cache()
        assert graph_cache_stats() == {"hits": 0, "misses": 0}
