"""Baseline attacks: RNA, FGA, FGA-T, FGA-T&E, IG-Attack."""

import numpy as np
import pytest

from repro.attacks import (
    FGA,
    FGATargeted,
    FGATExplainerEvasion,
    IGAttack,
    RandomAttack,
    make_attack,
)


class TestRegistry:
    def test_make_attack_by_paper_name(self, trained_model):
        attack = make_attack("Nettack", trained_model)
        assert attack.name == "Nettack"

    def test_unknown_name_raises(self, trained_model):
        with pytest.raises(KeyError):
            make_attack("PGD", trained_model)


class TestRandomAttack:
    def test_budget_respected(self, tiny_graph, trained_model):
        result = RandomAttack(trained_model, seed=0).attack(tiny_graph, 10, 0, 3)
        assert len(result.added_edges) <= 3

    def test_edges_touch_victim_and_target_label(
        self, tiny_graph, trained_model
    ):
        result = RandomAttack(trained_model, seed=0).attack(tiny_graph, 10, 1, 3)
        for u, v in result.added_edges:
            assert 10 in (u, v)
            other = v if u == 10 else u
            assert tiny_graph.labels[other] == 1

    def test_deterministic_per_seed(self, tiny_graph, trained_model):
        a = RandomAttack(trained_model, seed=5).attack(tiny_graph, 10, 1, 3)
        b = RandomAttack(trained_model, seed=5).attack(tiny_graph, 10, 1, 3)
        assert a.added_edges == b.added_edges

    def test_no_duplicate_edges(self, tiny_graph, trained_model):
        result = RandomAttack(trained_model, seed=0).attack(tiny_graph, 10, 1, 5)
        assert len(set(result.added_edges)) == len(result.added_edges)


class TestFGA:
    def test_untargeted_increases_original_loss(
        self, tiny_graph, trained_model, clean_predictions
    ):
        from repro.attacks.base import DenseGCNForward
        from repro.attacks.fga import targeted_loss
        from repro.autodiff.tensor import Tensor

        node = 10
        forward = DenseGCNForward(trained_model, tiny_graph.features)
        before = targeted_loss(
            forward,
            Tensor(tiny_graph.dense_adjacency()),
            node,
            int(clean_predictions[node]),
        ).item()
        result = FGA(trained_model, seed=0).attack(tiny_graph, node, None, 3)
        after = targeted_loss(
            forward,
            Tensor(result.perturbed_graph.dense_adjacency()),
            node,
            int(clean_predictions[node]),
        ).item()
        assert after > before

    def test_greedy_adds_distinct_edges(self, tiny_graph, trained_model):
        result = FGA(trained_model, seed=0).attack(tiny_graph, 10, None, 4)
        assert len(set(result.added_edges)) == len(result.added_edges)

    def test_edges_incident_to_victim(self, tiny_graph, trained_model):
        result = FGA(trained_model, seed=0).attack(tiny_graph, 10, None, 3)
        assert all(10 in edge for edge in result.added_edges)


class TestFGATargeted:
    def test_flips_flippable_victim(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        result = FGATargeted(trained_model, seed=0).attack(
            tiny_graph, node, target_label, budget
        )
        assert result.hit_target

    def test_candidates_carry_target_label(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        result = FGATargeted(trained_model, seed=0).attack(
            tiny_graph, node, target_label, budget
        )
        for u, v in result.added_edges:
            other = v if u == node else u
            assert tiny_graph.labels[other] == target_label

    def test_beats_random_on_average(
        self, tiny_graph, trained_model, clean_predictions
    ):
        degrees = tiny_graph.degrees()
        victims = np.flatnonzero(
            (clean_predictions == tiny_graph.labels) & (degrees >= 2)
        )[:6]
        wins_targeted = wins_random = 0
        for node in victims:
            node = int(node)
            target = (int(clean_predictions[node]) + 1) % tiny_graph.num_classes
            budget = int(degrees[node])
            t = FGATargeted(trained_model, seed=1).attack(
                tiny_graph, node, target, budget
            )
            r = RandomAttack(trained_model, seed=1).attack(
                tiny_graph, node, target, budget
            )
            wins_targeted += int(t.hit_target)
            wins_random += int(r.hit_target)
        assert wins_targeted >= wins_random


class TestFGATEvasion:
    def test_runs_and_respects_budget(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        attack = FGATExplainerEvasion(
            trained_model, seed=0, explainer_epochs=10, explanation_size=10
        )
        result = attack.attack(tiny_graph, node, target_label, budget)
        assert len(result.added_edges) <= budget
        assert all(node in edge for edge in result.added_edges)


class TestIGAttack:
    def test_steps_validated(self, trained_model):
        with pytest.raises(ValueError):
            IGAttack(trained_model, steps=0)

    def test_flips_flippable_victim(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        result = IGAttack(trained_model, seed=0, steps=5).attack(
            tiny_graph, node, target_label, budget
        )
        assert result.misclassified

    def test_integrated_gradient_reduces_to_mean_of_path(
        self, tiny_graph, trained_model
    ):
        """With steps=1 the IG score equals the endpoint gradient."""
        from repro.attacks.base import DenseGCNForward
        from repro.attacks.fga import targeted_loss
        from repro.autodiff.tensor import Tensor, grad

        attack = IGAttack(trained_model, seed=0, steps=1)
        forward = DenseGCNForward(trained_model, tiny_graph.features)
        node, label = 10, 0
        candidates = attack._candidates(tiny_graph, node, label)
        scores = attack._integrated_gradients(
            forward, tiny_graph, node, label, candidates
        )
        base = tiny_graph.dense_adjacency()
        direction = np.zeros_like(base)
        direction[node, candidates] = 1.0
        direction[candidates, node] = 1.0
        endpoint = Tensor(base + direction, requires_grad=True)
        g = grad(
            targeted_loss(forward, endpoint, node, label), endpoint
        ).data
        assert np.allclose(scores, -(g + g.T), atol=1e-10)
