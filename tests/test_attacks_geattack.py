"""GEAttack: the bilevel objective, λ behaviour, end-to-end joint attack."""

import numpy as np
import pytest

from repro.attacks import FGATargeted, GEAttack, GEAttackPG, evasion_matrix
from repro.attacks.base import DenseGCNForward
from repro.autodiff.tensor import Tensor, grad


class TestEvasionMatrix:
    def test_zeroes_clean_edges_and_diagonal(self, tiny_graph):
        matrix = evasion_matrix(tiny_graph)
        assert np.all(np.diag(matrix) == 0.0)
        for u, v in list(tiny_graph.edge_set())[:20]:
            assert matrix[u, v] == 0.0
            assert matrix[v, u] == 0.0

    def test_ones_on_non_edges(self, tiny_graph):
        matrix = evasion_matrix(tiny_graph)
        dense = tiny_graph.dense_adjacency()
        off_diagonal = ~np.eye(tiny_graph.num_nodes, dtype=bool)
        non_edges = off_diagonal & (dense == 0.0)
        assert np.all(matrix[non_edges] == 1.0)

    def test_symmetric(self, tiny_graph):
        matrix = evasion_matrix(tiny_graph)
        assert np.array_equal(matrix, matrix.T)


class TestBilevelObjective:
    @pytest.fixture()
    def setup(self, tiny_graph, trained_model, flippable_victim):
        node, target_label, budget = flippable_victim
        forward = DenseGCNForward(trained_model, tiny_graph.features)
        attack = GEAttack(trained_model, seed=0, inner_steps=2, inner_lr=0.05)
        evasion = evasion_matrix(tiny_graph)
        rng = np.random.default_rng(0)
        mask_init = rng.normal(0.0, 0.1, (tiny_graph.num_nodes,) * 2)
        return tiny_graph, forward, attack, node, target_label, evasion, mask_init

    def test_penalty_differentiable_wrt_adjacency(self, setup):
        graph, forward, attack, node, label, evasion, mask_init = setup
        adjacency = Tensor(graph.dense_adjacency(), requires_grad=True)
        penalty = attack.explainer_penalty(
            forward, adjacency, node, label, evasion, mask_init
        )
        gradient = grad(penalty, adjacency)
        # The second-order path must produce signal on the victim's row.
        assert np.any(gradient.data[node] != 0)

    def test_penalty_gradient_targets_explaining_candidates(self, setup):
        """Candidates whose edge would explain ŷ get positive penalty grad."""
        graph, forward, attack, node, label, evasion, mask_init = setup
        adjacency = Tensor(graph.dense_adjacency(), requires_grad=True)
        penalty = attack.explainer_penalty(
            forward, adjacency, node, label, evasion, mask_init
        )
        penalty_grad = grad(penalty, adjacency).data
        attack_loss = Tensor(graph.dense_adjacency(), requires_grad=True)
        from repro.attacks.fga import targeted_loss

        attack_grad = grad(
            targeted_loss(forward, attack_loss, node, label), attack_loss
        ).data
        candidates = attack._candidates(graph, node, label)
        pen = (penalty_grad + penalty_grad.T)[node, candidates]
        att = (attack_grad + attack_grad.T)[node, candidates]
        # The paper's contradiction: the strongest attack edges (most negative
        # attack gradient) are the most explaining (most positive penalty
        # gradient) — strong negative correlation between the two vectors.
        correlation = np.corrcoef(att, pen)[0, 1]
        assert correlation < -0.5

    def test_penalty_value_constant_on_clean_graph(self, setup, trained_model):
        """Non-edges get no inner mask gradient: the penalty over a clean
        victim row is pure M⁰ noise, independent of T (the evasion signal
        lives in ∇_Â, not in the value)."""
        graph, forward, _, node, label, evasion, mask_init = setup
        values = []
        for steps in (1, 4):
            atk = GEAttack(
                trained_model, seed=0, inner_steps=steps, inner_lr=0.05
            )
            adjacency = Tensor(graph.dense_adjacency(), requires_grad=True)
            penalty = atk.explainer_penalty(
                forward, adjacency, node, label, evasion, mask_init
            )
            values.append(penalty.item())
        assert values[0] == pytest.approx(values[1])

    def test_inner_steps_move_penalty_once_edge_added(
        self, setup, trained_model
    ):
        """With an adversarial edge in Â, the simulated explainer assigns it
        mask mass over the T inner steps, so the penalty value moves."""
        graph, forward, attack, node, label, evasion, mask_init = setup
        candidates = attack._candidates(graph, node, label)
        perturbed = graph.with_edges_added([(node, int(candidates[0]))])
        values = []
        for steps in (1, 6):
            atk = GEAttack(
                trained_model, seed=0, inner_steps=steps, inner_lr=0.05
            )
            adjacency = Tensor(perturbed.dense_adjacency(), requires_grad=True)
            penalty = atk.explainer_penalty(
                forward, adjacency, node, label, evasion, mask_init
            )
            values.append(penalty.item())
        assert values[0] != pytest.approx(values[1], abs=1e-12)


class TestLambdaBehaviour:
    def test_lambda_zero_matches_fga_t(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        joint = GEAttack(trained_model, seed=0, lam=0.0).attack(
            tiny_graph, node, target_label, budget
        )
        pure = FGATargeted(trained_model, seed=0).attack(
            tiny_graph, node, target_label, budget
        )
        assert set(joint.added_edges) == set(pure.added_edges)

    def test_moderate_lambda_keeps_attack_success(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        result = GEAttack(trained_model, seed=0).attack(
            tiny_graph, node, target_label, budget
        )
        assert result.misclassified

    def test_huge_lambda_changes_edge_selection(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        small = GEAttack(trained_model, seed=0, lam=0.0).attack(
            tiny_graph, node, target_label, budget
        )
        huge = GEAttack(trained_model, seed=0, lam=1e5).attack(
            tiny_graph, node, target_label, budget
        )
        assert set(small.added_edges) != set(huge.added_edges)


class TestEndToEnd:
    def test_budget_and_incidence(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        result = GEAttack(trained_model, seed=0).attack(
            tiny_graph, node, target_label, budget
        )
        assert len(result.added_edges) <= budget
        assert all(node in edge for edge in result.added_edges)
        assert all(
            not tiny_graph.has_edge(u, v) for u, v in result.added_edges
        )

    def test_added_edges_leave_penalty_support(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        attack = GEAttack(trained_model, seed=0)
        result = attack.attack(tiny_graph, node, target_label, min(2, budget))
        # Re-derive the evasion matrix after the attack: added edges must be
        # zeroed the same way Algorithm 1 line 10 does.
        matrix = evasion_matrix(tiny_graph)
        for u, v in result.added_edges:
            matrix[u, v] = matrix[v, u] = 0.0
        assert np.all(matrix[node][[v for _, v in result.added_edges]] == 0)


class TestGEAttackPG:
    def test_requires_fitted_explainer(self, trained_model):
        from repro.explain import PGExplainer

        unfitted = PGExplainer(trained_model, seed=0)
        with pytest.raises(ValueError):
            GEAttackPG(trained_model, unfitted)

    def test_end_to_end(self, tiny_graph, trained_model, flippable_victim):
        from repro.explain import PGExplainer

        node, target_label, budget = flippable_victim
        pg = PGExplainer(trained_model, epochs=4, seed=0).fit(
            tiny_graph, instances=6
        )
        attack = GEAttackPG(trained_model, pg, seed=0, inner_steps=1)
        result = attack.attack(tiny_graph, node, target_label, min(2, budget))
        assert len(result.added_edges) <= min(2, budget)
        assert all(node in edge for edge in result.added_edges)
