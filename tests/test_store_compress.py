"""Optional gzip compression in the result store.

The contract: compression is opt-in on ``put`` (``REPRO_STORE_COMPRESS=1``
or ``ResultStore(compress=True)``), transparent on ``get`` (records are
sniffed by the gzip magic, so plain and compressed records coexist in one
store), the manifest's length/sha cover the *stored* bytes (integrity is
checked before decompression), and a mixed store resumes an arena run
with zero re-executed attacks.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import replace

import pytest

from repro.arena import ResultStore, ScenarioGrid, run_arena
from repro.arena.grid import canonical_json
from repro.experiments import SCALE_PRESETS

PAYLOAD = {"answer": 42, "text": "gzip " * 64}  # compressible


def _record_bytes(store, key):
    return store.path(key).read_bytes()


class TestCompressToggle:
    def test_default_store_writes_plain_json(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("a" * 64, PAYLOAD)
        raw = _record_bytes(store, "a" * 64)
        assert raw == canonical_json(PAYLOAD).encode("utf-8")

    def test_constructor_flag_compresses(self, tmp_path):
        store = ResultStore(tmp_path / "store", compress=True)
        store.put("a" * 64, PAYLOAD)
        raw = _record_bytes(store, "a" * 64)
        assert raw[:2] == b"\x1f\x8b"
        assert json.loads(gzip.decompress(raw)) == PAYLOAD
        assert len(raw) < len(canonical_json(PAYLOAD).encode("utf-8"))

    def test_env_flag_compresses(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "1")
        store = ResultStore(tmp_path / "store")
        store.put("a" * 64, PAYLOAD)
        assert _record_bytes(store, "a" * 64)[:2] == b"\x1f\x8b"

    def test_constructor_flag_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "1")
        store = ResultStore(tmp_path / "store", compress=False)
        store.put("a" * 64, PAYLOAD)
        assert _record_bytes(store, "a" * 64)[:2] != b"\x1f\x8b"

    def test_compressed_bytes_deterministic(self, tmp_path):
        # gzip with mtime=0: same payload, same bytes, every time.
        first = ResultStore(tmp_path / "one", compress=True)
        second = ResultStore(tmp_path / "two", compress=True)
        first.put("a" * 64, PAYLOAD)
        second.put("a" * 64, PAYLOAD)
        assert _record_bytes(first, "a" * 64) == _record_bytes(second, "a" * 64)


class TestTransparentReads:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store", compress=True)
        store.put("a" * 64, PAYLOAD)
        assert store.get("a" * 64) == PAYLOAD

    def test_mixed_store_reads_both(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root, compress=False).put("a" * 64, {"kind": "plain"})
        ResultStore(root, compress=True).put("b" * 64, {"kind": "gzip"})
        reader = ResultStore(root)
        assert reader.get("a" * 64) == {"kind": "plain"}
        assert reader.get("b" * 64) == {"kind": "gzip"}
        assert len(reader) == 2

    def test_manifest_covers_stored_bytes(self, tmp_path):
        import hashlib

        store = ResultStore(tmp_path / "store", compress=True)
        store.put("a" * 64, PAYLOAD)
        raw = _record_bytes(store, "a" * 64)
        line = next(
            entry
            for entry in (tmp_path / "store" / "MANIFEST")
            .read_text()
            .splitlines()
            if entry.startswith("v2\t")
        )
        _, _, _, length, digest = line.split("\t")
        assert int(length) == len(raw)
        assert digest == hashlib.sha256(raw).hexdigest()

    def test_rebuilt_index_serves_compressed_records(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root, compress=True).put("a" * 64, PAYLOAD)
        (root / "MANIFEST").unlink()  # force the shard-walk rebuild
        assert ResultStore(root).get("a" * 64) == PAYLOAD

    def test_compact_keeps_mixed_records(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root, compress=False).put("a" * 64, {"kind": "plain"})
        ResultStore(root, compress=True).put("b" * 64, {"kind": "gzip"})
        store = ResultStore(root)
        store.compact()
        assert store.get("a" * 64) == {"kind": "plain"}
        assert store.get("b" * 64) == {"kind": "gzip"}

    def test_corrupt_gzip_quarantined(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root, compress=True)
        store.put("a" * 64, PAYLOAD)
        path = store.path("a" * 64)
        raw = path.read_bytes()
        path.write_bytes(raw[:2] + b"\x00" * 8)  # magic intact, body garbage
        # Fresh handle: the manifest length/sha no longer match either,
        # and either failure mode must be a miss + quarantine, not a crash.
        fresh = ResultStore(root)
        assert fresh.get("a" * 64) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_counter_increments_on_compressed_put(self, tmp_path):
        from repro.obs import metrics

        before = metrics.counters().get("store.compressed_writes", 0)
        ResultStore(tmp_path / "store", compress=True).put("a" * 64, PAYLOAD)
        assert metrics.counters()["store.compressed_writes"] == before + 1


#: Trimmed to seconds: tiny model, three victims, one cheap attack.
CONFIG = replace(
    SCALE_PRESETS["smoke"],
    epochs=60,
    num_victims=3,
    margin_group=1,
    explainer_epochs=20,
)
GRID = ScenarioGrid(
    attacks=("FGA-T",), defenses=("none",), budget_caps=(2,), seeds=(0,)
)


class TestArenaResumeAcrossCompression:
    def test_mixed_store_resumes_with_zero_executions(
        self, tmp_path, monkeypatch
    ):
        """Half plain + half gzip records resume as one warm store."""
        cases = {}
        root = tmp_path / "store"
        cold = run_arena(GRID, ResultStore(root), config=CONFIG, cases=cases)
        assert cold.executed > 0

        # Drop half the records and re-execute them compressed.
        keys = sorted(ResultStore(root).keys())
        half = keys[: len(keys) // 2] or keys[:1]
        store = ResultStore(root)
        for key in half:
            store.path(key).unlink()
            store._drop(key)
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "1")
        repaired = run_arena(GRID, ResultStore(root), config=CONFIG, cases=cases)
        assert repaired.executed == len(half)
        monkeypatch.delenv("REPRO_STORE_COMPRESS")

        kinds = {
            ResultStore(root).path(key).read_bytes()[:2] == b"\x1f\x8b"
            for key in keys
        }
        assert kinds == {True, False}  # genuinely mixed on disk

        warm = run_arena(GRID, ResultStore(root), config=CONFIG, cases=cases)
        assert warm.executed == 0
        assert warm.loaded == cold.executed
        assert "executed 0 attacks" in warm.stats_line()
