"""Differential harness for threat-model execution (mirrors the locality
suite): the new axis must change *only* what it claims to change.

Three contracts, enumerated over the full attack registry so a newly
registered attack is covered with no test edits:

* **default ≡ legacy** — ``execute_with_threat`` under the default
  (white-box oblivious) threat model is byte-identical to
  ``attack.attack_many``: same edge sets, same ASR events, same score
  traces, same serialized records.
* **degenerate surrogate ≡ white-box** — a surrogate trained with the
  victim's own seed and hidden width reproduces the victim model
  bit-for-bit (the training pipeline is deterministic), so surrogate
  execution with ``surrogate_seed == victim_seed`` collapses to the
  white-box path exactly.
* **adaptive execution is sound** — budget respected, perturbations
  anchored on the raw graph, store round-trip replay exact, and the
  defense-in-the-loop game actually changes the attacker's behavior
  against a sanitizing defense.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.api.registry import build_attack, build_defense
from repro.api.session import Session
from repro.api.specs import ThreatModel
from repro.attacks import ATTACKS, EXTENSION_ATTACKS, AttackResult, VictimSpec
from repro.nn import ARCHITECTURES
from repro.threat import (
    SURROGATE_SEED_OFFSET,
    adaptive_attack_one,
    execute_with_threat,
    resolve_threat,
    surrogate_case,
)

REGISTRY = sorted({**ATTACKS, **EXTENSION_ATTACKS})

#: Trimmed to seconds per attack; every knob pinned so drift cannot
#: silently change what the differentials compare.
CONFIG = replace(
    Session().config,
    epochs=60,
    num_victims=3,
    margin_group=1,
    explainer_epochs=20,
    geattack_inner_steps=2,
    budget_cap=3,
)


@pytest.fixture(scope="module")
def session():
    return Session(config=CONFIG)


@pytest.fixture(scope="module")
def case(session):
    prepared, victims = session.prepared("cora")
    if not victims:
        pytest.skip("no flippable victims at this scale")
    return prepared


@pytest.fixture(scope="module")
def victims(session):
    derived = session.prepared("cora")[1]
    return [
        VictimSpec(v.node, v.target_label, min(v.budget, CONFIG.budget_cap))
        for v in derived
    ]


def assert_results_byte_identical(expected, actual, context):
    assert len(expected) == len(actual), context
    for one, two in zip(expected, actual):
        assert one.to_dict() == two.to_dict(), context
        assert (
            one.perturbed_graph.edge_set() == two.perturbed_graph.edge_set()
        ), context


@pytest.mark.parametrize("name", REGISTRY)
class TestDefaultThreatIsLegacyPath:
    def test_byte_identical_to_attack_many(self, name, session, case, victims):
        attack = build_attack(name, case, CONFIG, context=session)
        legacy = attack.attack_many(case.graph, victims)
        for threat in (None, ThreatModel(), "white_box+oblivious"):
            routed = execute_with_threat(
                attack, case, victims, threat=threat
            )
            assert_results_byte_identical(
                legacy, routed, f"{name} threat={threat!r}"
            )


@pytest.mark.parametrize("name", REGISTRY)
class TestSurrogateDegeneracy:
    def test_victim_seed_surrogate_is_white_box(
        self, name, session, case, victims
    ):
        """surrogate_seed == victim seed, same hidden → byte-identical."""
        degenerate = ThreatModel(
            knowledge="surrogate",
            surrogate_hidden=CONFIG.hidden,
            surrogate_seed=case.seed,
        )
        white_box = build_attack(name, case, CONFIG, context=session)
        legacy = white_box.attack_many(case.graph, victims)
        attack = build_attack(
            name, case, CONFIG, context=session, threat=degenerate
        )
        routed = execute_with_threat(attack, case, victims, threat=degenerate)
        assert_results_byte_identical(legacy, routed, name)


class TestSurrogateTraining:
    def test_degenerate_twin_reproduces_victim_weights(self, session, case):
        twin = session.surrogate_case(case, hidden=CONFIG.hidden, seed=case.seed)
        for (name, ours), (_, theirs) in zip(
            case.model.state_dict().items(), twin.model.state_dict().items()
        ):
            assert np.array_equal(ours, theirs), name

    def test_independent_seed_gives_independent_model(self, session, case):
        surrogate = session.surrogate_case(case)
        assert surrogate.seed == case.seed + SURROGATE_SEED_OFFSET
        assert surrogate.graph is case.graph, "surrogate observes the graph"
        different = any(
            not np.array_equal(ours, theirs)
            for (_, ours), (_, theirs) in zip(
                case.model.state_dict().items(),
                surrogate.model.state_dict().items(),
            )
        )
        assert different, "an offset-seeded surrogate must not be the victim"

    def test_surrogate_is_memoized(self, session, case):
        assert session.surrogate_case(case) is session.surrogate_case(case)

    def test_surrogate_results_reanchor_on_victim_model(
        self, session, case, victims
    ):
        """Predictions in surrogate results come from the victim oracle."""
        threat = resolve_threat(ThreatModel.parse("surrogate"), CONFIG, case.seed)
        attack = build_attack(
            "FGA-T", case, CONFIG, context=session, threat=threat
        )
        results = execute_with_threat(attack, case, victims, threat=threat)
        from repro.attacks.base import Attack

        oracle = Attack(case.model)
        for spec, result in zip(victims, results):
            assert result.original_prediction == oracle.predict(
                case.graph, spec.node
            )
            assert result.final_prediction == oracle.predict(
                result.perturbed_graph, spec.node
            )
            assert all(
                edge not in case.graph.edge_set() for edge in result.added_edges
            )


class TestSurrogateDegeneracyPerArch:
    """The degeneracy contract holds for every registered architecture."""

    @pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
    def test_degenerate_twin_reproduces_victim_weights(self, session, arch):
        """A surrogate with the victim's own arch/seed/hidden *is* the
        victim, bit for bit — the training pipeline is deterministic."""
        prepared, _ = session.prepared("cora", arch=arch)
        twin = session.surrogate_case(
            prepared, hidden=CONFIG.hidden, seed=prepared.seed
        )
        assert twin.model.arch == arch
        for (name, ours), (_, theirs) in zip(
            prepared.model.state_dict().items(),
            twin.model.state_dict().items(),
        ):
            assert np.array_equal(ours, theirs), f"{arch}:{name}"

    def test_cross_arch_surrogate_is_a_different_model(self, session, case):
        surrogate = session.surrogate_case(case, arch="gat")
        assert case.model.arch == "gcn"
        assert surrogate.model.arch == "gat"
        assert surrogate.graph is case.graph, "surrogate observes the graph"

    def test_cross_arch_transfer_cell_round_trips_exactly(
        self, session, case, victims
    ):
        """A GAT-surrogate attack on the GCN victim: results re-anchor on
        the true victim oracle and replay from their records exactly."""
        threat = resolve_threat(
            ThreatModel.parse("surrogate:gat"), CONFIG, case.seed
        )
        assert threat.surrogate_arch == "gat"
        attack = build_attack(
            "FGA-T", case, CONFIG, context=session, threat=threat
        )
        results = execute_with_threat(attack, case, victims, threat=threat)
        from repro.attacks.base import Attack

        oracle = Attack(case.model)
        for spec, result in zip(victims, results):
            replayed = AttackResult.from_dict(
                result.to_dict(), graph=case.graph
            )
            assert replayed.to_dict() == result.to_dict()
            assert (
                replayed.perturbed_graph.edge_set()
                == result.perturbed_graph.edge_set()
            )
            assert result.original_prediction == oracle.predict(
                case.graph, spec.node
            )
            assert result.final_prediction == oracle.predict(
                result.perturbed_graph, spec.node
            )


@pytest.fixture(scope="module")
def jaccard_sim(case):
    return build_defense("jaccard", case, config=CONFIG)


@pytest.fixture(scope="module")
def explainer_sim(session, case):
    return build_defense(
        "explainer",
        case,
        config=CONFIG,
        context=session,
        prune_k=CONFIG.budget_cap,
        trusted_edges=case.graph.edge_set(),
    )


class TestAdaptiveExecution:
    def test_requires_the_defense_simulation(self, session, case, victims):
        attack = build_attack("FGA-T", case, CONFIG, context=session)
        with pytest.raises(ValueError, match="defense"):
            execute_with_threat(
                attack, case, victims, threat="adaptive:jaccard"
            )

    @pytest.mark.parametrize("name", ["FGA-T", "GEAttack", "DICE"])
    def test_budget_and_anchoring(
        self, name, session, case, victims, jaccard_sim
    ):
        attack = build_attack(name, case, CONFIG, context=session)
        clean_edges = case.graph.edge_set()
        for spec in victims:
            result = adaptive_attack_one(
                attack, case.graph, spec, jaccard_sim, case.model
            )
            spent = len(result.added_edges) + len(result.history)
            assert spent <= spec.budget, name
            assert all(e not in clean_edges for e in result.added_edges)
            assert all(
                edge in clean_edges for tag, edge in result.history
            ), "recorded removals must exist on the raw graph"
            assert (
                result.perturbed_graph.edge_set()
                == (clean_edges - {e for _, e in result.history})
                | set(result.added_edges)
            )

    @pytest.mark.parametrize("sim", ["jaccard_sim", "explainer_sim"])
    def test_store_round_trip_is_exact(
        self, sim, request, session, case, victims
    ):
        """Adaptive results replay from their records bit-for-bit."""
        defense = request.getfixturevalue(sim)
        attack = build_attack("FGA-T", case, CONFIG, context=session)
        for spec in victims:
            result = adaptive_attack_one(
                attack, case.graph, spec, defense, case.model
            )
            replayed = AttackResult.from_dict(result.to_dict(), graph=case.graph)
            assert replayed.to_dict() == result.to_dict()
            assert (
                replayed.perturbed_graph.edge_set()
                == result.perturbed_graph.edge_set()
            )

    def test_defense_in_the_loop_changes_behavior(
        self, session, case, victims, jaccard_sim
    ):
        """Adapting to a sanitizer must alter at least one victim's attack."""
        attack = build_attack("FGA-T", case, CONFIG, context=session)
        oblivious = attack.attack_many(case.graph, victims)
        adapted = [
            adaptive_attack_one(attack, case.graph, spec, jaccard_sim, case.model)
            for spec in victims
        ]
        assert any(
            one.added_edges != two.added_edges
            or one.history != two.history
            for one, two in zip(oblivious, adapted)
        ), "the adaptive attacker never deviated from the oblivious path"

    def test_explainer_view_anticipates_the_prune(
        self, case, victims, explainer_sim
    ):
        """After committing an edge, the attacker's view shows it pruned."""
        spec = victims[0]
        assert explainer_sim.attacker_view(case.graph, spec.node) is case.graph
        endpoint = next(
            node
            for node in range(case.graph.num_nodes)
            if node != spec.node
            and (min(node, spec.node), max(node, spec.node))
            not in case.graph.edge_set()
        )
        edge = (min(endpoint, spec.node), max(endpoint, spec.node))
        perturbed = case.graph.with_edges_added([edge])
        view = explainer_sim.attacker_view(perturbed, spec.node)
        outcome = explainer_sim.inspect(perturbed, spec.node)
        assert view.edge_set() == perturbed.edge_set() - set(
            outcome.pruned_edges
        )


class TestResolveThreat:
    def test_default_passes_through(self):
        assert resolve_threat(ThreatModel(), CONFIG, 0).is_default

    def test_surrogate_defaults_resolve(self):
        resolved = resolve_threat("surrogate", CONFIG, 5)
        assert resolved.surrogate_hidden == CONFIG.hidden
        assert resolved.surrogate_seed == 5 + SURROGATE_SEED_OFFSET

    def test_adaptive_defense_params_resolve(self):
        resolved = resolve_threat("adaptive:explainer", CONFIG, 0)
        assert dict(resolved.defense_params) == {
            "inspection_window": CONFIG.explanation_size
        }

    def test_explicit_fields_are_preserved(self):
        resolved = resolve_threat("surrogate:h8,s3", CONFIG, 5)
        assert resolved.surrogate_hidden == 8
        assert resolved.surrogate_seed == 3


class TestParseErrors:
    """Malformed --threat tokens must raise clean ValueErrors."""

    def test_unknown_part_is_rejected(self):
        with pytest.raises(ValueError, match="bad threat part 'blackbox'"):
            ThreatModel.parse("blackbox")

    def test_adaptive_without_defense_is_rejected(self):
        with pytest.raises(ValueError, match="bad threat part 'adaptive'"):
            ThreatModel.parse("adaptive")

    def test_malformed_surrogate_suffix_is_rejected(self):
        # 'x8' is a well-formed arch token since the architecture axis;
        # '8x' is neither h<int>, s<int> nor an identifier.
        with pytest.raises(ValueError, match="bad surrogate token '8x'"):
            ThreatModel.parse("surrogate:8x")
        with pytest.raises(ValueError, match="bad surrogate token 'h'"):
            ThreatModel.parse("surrogate:h,s3")
        with pytest.raises(ValueError, match="duplicate surrogate arch"):
            ThreatModel.parse("surrogate:gat,gin")

    def test_duplicate_knowledge_axis_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate knowledge axis"):
            ThreatModel.parse("surrogate+surrogate:h8")
        with pytest.raises(ValueError, match="duplicate knowledge axis"):
            ThreatModel.parse("white_box+surrogate")

    def test_duplicate_adaptivity_axis_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate adaptivity axis"):
            ThreatModel.parse("adaptive:jaccard+adaptive:svd")
        with pytest.raises(ValueError, match="duplicate adaptivity axis"):
            ThreatModel.parse("oblivious+preprocess_aware:jaccard")

    def test_explicit_defaults_still_parse(self):
        # The CLI's default token spells out both axes once each.
        assert ThreatModel.parse("white_box+oblivious").is_default
        assert ThreatModel.parse("").is_default
        assert ThreatModel.parse("surrogate:h8+adaptive:jaccard").defense == (
            "jaccard"
        )
