"""Golden regression snapshot for the arena's rendered matrices.

The arena mirror of ``tests/test_table_golden.py``, three contracts in one:

* **Parallel determinism** — the same grid rendered at ``jobs=1`` and
  ``jobs=4`` must produce the byte-identical text (per-victim seeding).
* **Regression snapshot** — the rendered matrices must equal the
  committed golden ``tests/data/golden_arena.txt``.  The grid covers the
  legacy oblivious path *and* an adaptive (defense-aware) threat, so any
  change to attack maths, threat execution, defense scoring or matrix
  formatting shows up as a diff here; regenerate deliberately with::

      PYTHONPATH=src python tests/test_arena_golden.py --regen

* **The adaptive axis bites** — the adaptive threat's explainer-defense
  cell reports *strictly different* evasion than its oblivious twin (the
  threat-axis acceptance criterion: optimizing through a sanitizer
  changes what survives the inspector).

The fixture is deliberately tiny (a ~130-node cora-like graph, one seed,
six victims, two attacks × two defenses × two threats).
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.api.specs import ThreatModel
from repro.arena import (
    ResultStore,
    ScenarioGrid,
    arena_matrix,
    render_arena_matrices,
    run_arena,
)
from repro.experiments import ExperimentConfig

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "data", "golden_arena.txt"
)

#: Every knob pinned explicitly so preset drift can never silently change
#: the snapshot.  ``explanation_size=5`` keeps the inspection window
#: tighter than the victims' subgraph rankings, so window-evasion (and
#: hence the adaptive-vs-oblivious gap) is actually expressible at this
#: scale.
GOLDEN_CONFIG = ExperimentConfig(
    dataset_scale=0.06,
    seed=0,
    num_seeds=1,
    hidden=16,
    epochs=80,
    num_victims=6,
    margin_group=1,
    budget_cap=3,
    explainer_epochs=40,
    explanation_size=5,
    geattack_inner_steps=3,
    pg_epochs=6,
    pg_instances=6,
)

GOLDEN_GRID = ScenarioGrid(
    attacks=("FGA-T", "GEAttack"),
    defenses=("jaccard", "explainer"),
    budget_caps=(3,),
    seeds=(0,),
    threats=("white_box+oblivious", "adaptive:jaccard"),
)

#: The architecture-axis golden: the same attack crossing the model zoo,
#: rendered per-arch (never silently averaged across architectures).
ARCH_GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "data",
    "golden_arena_archs.txt",
)

ARCH_GOLDEN_GRID = ScenarioGrid(
    attacks=("FGA-T",),
    defenses=("none", "jaccard"),
    budget_caps=(3,),
    seeds=(0,),
    threats=("white_box+oblivious",),
    archs=("gcn", "sage"),
)


def run_golden_arena(store_root, jobs, cases=None):
    run = run_arena(
        GOLDEN_GRID,
        ResultStore(store_root),
        config=GOLDEN_CONFIG,
        jobs=jobs,
        cases=cases,
    )
    return run, render_arena_matrices(run) + "\n"


@pytest.fixture(scope="module")
def shared_cases():
    return {}


@pytest.fixture(scope="module")
def serial(tmp_path_factory, shared_cases):
    root = tmp_path_factory.mktemp("arena-golden") / "store"
    run, text = run_golden_arena(root, jobs=1, cases=shared_cases)
    return root, run, text


def test_jobs_one_and_four_render_byte_identical(
    serial, tmp_path, shared_cases
):
    _, _, text = serial
    _, parallel_text = run_golden_arena(
        tmp_path / "store-j4", jobs=4, cases=shared_cases
    )
    assert parallel_text == text


def test_render_matches_committed_golden(serial):
    _, _, text = serial
    assert os.path.exists(GOLDEN_PATH), (
        "golden snapshot missing; regenerate with "
        "`PYTHONPATH=src python tests/test_arena_golden.py --regen`"
    )
    with open(GOLDEN_PATH) as handle:
        golden = handle.read()
    assert text == golden, (
        "rendered arena matrices diverged from the committed snapshot; "
        "if the change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_arena_golden.py --regen`"
    )


def test_adaptive_cell_reports_strictly_different_evasion(serial):
    """The acceptance criterion: the adaptive threat's explainer-defense
    cell must not coincide with its oblivious twin's."""
    _, run, _ = serial
    adaptive = ThreatModel.parse("adaptive:jaccard")
    ours = arena_matrix(run, "evasion_rate", adaptive)
    twins = arena_matrix(run, "evasion_rate", adaptive.oblivious_twin())
    deltas = {
        (attack, defense): ours[attack][defense] - twins[attack][defense]
        for attack in run.grid.attacks
        for defense in run.grid.defenses
    }
    assert any(
        deltas[(attack, "explainer")] != 0.0 for attack in run.grid.attacks
    ), f"adaptive explainer-defense cells tied their oblivious twins: {deltas}"


def test_warm_resume_executes_zero_and_matches(serial, shared_cases):
    """Threat-axis cells obey the store contract like every other cell."""
    root, _, text = serial
    warm, warm_text = run_golden_arena(root, jobs=1, cases=shared_cases)
    assert warm.executed == 0
    assert warm_text == text


def run_arch_golden_arena(store_root, jobs, cases=None):
    run = run_arena(
        ARCH_GOLDEN_GRID,
        ResultStore(store_root),
        config=GOLDEN_CONFIG,
        jobs=jobs,
        cases=cases,
    )
    return run, render_arena_matrices(run) + "\n"


@pytest.fixture(scope="module")
def arch_shared_cases():
    return {}


@pytest.fixture(scope="module")
def arch_serial(tmp_path_factory, arch_shared_cases):
    root = tmp_path_factory.mktemp("arena-arch-golden") / "store"
    run, text = run_arch_golden_arena(root, jobs=1, cases=arch_shared_cases)
    return root, run, text


class TestArchGolden:
    """The architecture axis honours all three golden contracts."""

    def test_jobs_one_and_four_render_byte_identical(
        self, arch_serial, tmp_path, arch_shared_cases
    ):
        _, _, text = arch_serial
        _, parallel_text = run_arch_golden_arena(
            tmp_path / "store-j4", jobs=4, cases=arch_shared_cases
        )
        assert parallel_text == text

    def test_render_matches_committed_golden(self, arch_serial):
        _, _, text = arch_serial
        assert os.path.exists(ARCH_GOLDEN_PATH), (
            "arch golden snapshot missing; regenerate with "
            "`PYTHONPATH=src python tests/test_arena_golden.py --regen`"
        )
        with open(ARCH_GOLDEN_PATH) as handle:
            golden = handle.read()
        assert text == golden, (
            "rendered multi-arch matrices diverged from the committed "
            "snapshot; if intentional, regenerate with "
            "`PYTHONPATH=src python tests/test_arena_golden.py --regen`"
        )

    def test_each_arch_renders_its_own_block(self, arch_serial):
        _, _, text = arch_serial
        assert "arch=gcn" in text
        assert "arch=sage" in text

    def test_warm_resume_executes_zero_and_matches(
        self, arch_serial, arch_shared_cases
    ):
        root, _, text = arch_serial
        warm, warm_text = run_arch_golden_arena(
            root, jobs=1, cases=arch_shared_cases
        )
        assert warm.executed == 0
        assert warm_text == text


if __name__ == "__main__":
    if "--regen" in sys.argv:
        import tempfile

        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        for path, runner in (
            (GOLDEN_PATH, run_golden_arena),
            (ARCH_GOLDEN_PATH, run_arch_golden_arena),
        ):
            with tempfile.TemporaryDirectory() as tmp:
                _, text = runner(os.path.join(tmp, "store"), jobs=1)
            with open(path, "w") as handle:
                handle.write(text)
            print(f"wrote {path}:\n{text}")
    else:
        print(__doc__)
