"""Concurrent writers: N processes, one store, each cell exactly once.

The multi-writer contract behind arena-as-a-service (ROADMAP open item 2):
advisory per-cell leases let concurrent ``run_arena`` calls share a store
and split overlapping grids — a cell's lease winner executes it, losers
re-poll the store and load the winner's results.  Tested here end-to-end
with two forked processes over overlapping ``ScenarioGrid``s, plus direct
store-level lease semantics and a racing-writer torn-record check.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import replace

from repro.arena import (
    ResultStore,
    ScenarioGrid,
    content_key,
    render_arena_matrices,
    run_arena,
)
from repro.experiments import SCALE_PRESETS

#: Trimmed to seconds, mirroring the resume suite's operating point.
CONFIG = replace(
    SCALE_PRESETS["smoke"],
    epochs=60,
    num_victims=3,
    margin_group=1,
    explainer_epochs=20,
    geattack_inner_steps=2,
)

#: The union grid, and a strict-subset grid sharing its DICE cell — the
#: overlap is where exactly-once coordination actually gets exercised.
UNION_GRID = ScenarioGrid(
    attacks=("FGA-T", "DICE"),
    defenses=("none", "jaccard"),
    budget_caps=(2,),
    seeds=(0,),
)
SUBSET_GRID = ScenarioGrid(
    attacks=("DICE",),
    defenses=("none", "jaccard"),
    budget_caps=(2,),
    seeds=(0,),
)


class TestLeases:
    def test_exclusive_until_released(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        lease = store.try_lease("cell-a", ttl=60)
        assert lease is not None
        assert store.try_lease("cell-a", ttl=60) is None
        lease.release()
        again = store.try_lease("cell-a", ttl=60)
        assert again is not None
        again.release()

    def test_names_are_independent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        a = store.try_lease("cell-a", ttl=60)
        b = store.try_lease("cell-b", ttl=60)
        assert a is not None and b is not None
        a.release()
        b.release()

    def test_expired_lease_is_stolen(self, tmp_path):
        """A dead writer's lease frees itself after its TTL."""
        store = ResultStore(tmp_path / "store")
        dead = store.try_lease("cell-a", ttl=0.05)
        assert dead is not None
        time.sleep(0.1)
        stolen = store.try_lease("cell-a", ttl=60)
        assert stolen is not None
        stolen.release()

    def test_stale_release_cannot_clobber_the_new_holder(self, tmp_path):
        """release() after a steal is a no-op: tokens must match."""
        store = ResultStore(tmp_path / "store")
        dead = store.try_lease("cell-a", ttl=0.05)
        time.sleep(0.1)
        stolen = store.try_lease("cell-a", ttl=60)
        assert stolen is not None
        dead.release()  # stale holder wakes up late
        assert store.try_lease("cell-a", ttl=60) is None  # still held
        stolen.release()

    def test_release_survives_missing_file(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        lease = store.try_lease("cell-a", ttl=60)
        lease.path.unlink()
        lease.release()  # must not raise


def test_racing_writers_never_tear_records(tmp_path):
    """Two forked processes bulk-write the SAME key set simultaneously.

    Keys are content hashes of the payload's determinants, so racing
    writers write identical bytes; last rename wins and every surviving
    record must parse, checksum and match — no torn files, no duplicates,
    no leftover temp files.
    """
    root = tmp_path / "store"
    count = 150
    keys = [content_key({"record": i}) for i in range(count)]

    def writer():
        store = ResultStore(root)
        with store.bulk():
            for i, key in enumerate(keys):
                store.put(key, {"record": i, "blob": "x" * 200})

    ctx = multiprocessing.get_context("fork")
    workers = [ctx.Process(target=writer) for _ in range(2)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert worker.exitcode == 0
    store = ResultStore(root)
    assert store.compact() == count  # dedupes the two writers' manifests
    assert sorted(store.keys()) == sorted(keys)
    for i, key in enumerate(keys):
        assert store.get(key) == {"record": i, "blob": "x" * 200}
    assert list(root.rglob("*.tmp")) == []
    assert list(root.rglob("*.corrupt")) == []


def test_two_arena_writers_execute_each_cell_exactly_once(tmp_path):
    """Two forked ``run_arena`` calls over overlapping grids, one store.

    Accepts exactly the ISSUE contract: the union of work executes once
    (summed execution counters equal a serial run's), no torn or
    duplicate records, and the merged store serves a warm run with zero
    re-execution and a byte-identical matrix.
    """
    cases = {}
    ref_store = ResultStore(tmp_path / "reference")
    reference = run_arena(UNION_GRID, ref_store, config=CONFIG, cases=cases)
    reference_text = render_arena_matrices(reference)
    subset_text = render_arena_matrices(
        run_arena(SUBSET_GRID, ref_store, config=CONFIG, cases=cases)
    )

    shared_root = tmp_path / "shared"
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    barrier = ctx.Barrier(2)

    def worker(tag, grid):
        # Forked children inherit the parent's trained cases via COW, so
        # both runs reach attack execution (the contended phase) fast.
        barrier.wait()
        run = run_arena(
            grid,
            ResultStore(shared_root),
            config=CONFIG,
            cases=dict(cases),
            poll_interval=0.05,
        )
        queue.put((tag, run.executed, run.loaded, render_arena_matrices(run)))

    workers = [
        ctx.Process(target=worker, args=("union", UNION_GRID)),
        ctx.Process(target=worker, args=("subset", SUBSET_GRID)),
    ]
    for process in workers:
        process.start()
    outcomes = {}
    for _ in workers:
        tag, executed, loaded, text = queue.get(timeout=300)
        outcomes[tag] = (executed, loaded, text)
    for process in workers:
        process.join(timeout=120)
        assert process.exitcode == 0

    # Exactly-once: every unique victim-result executed by exactly one of
    # the two writers (each exists, and the sum leaves no room for twice).
    total_executed = outcomes["union"][0] + outcomes["subset"][0]
    assert total_executed == reference.executed
    # Both writers see the complete matrices for their own grids, byte-
    # identical to the serial reference.
    assert outcomes["union"][2] == reference_text
    assert outcomes["subset"][2] == subset_text

    # No torn or duplicate records: the merged store equals the serial
    # store byte-for-byte, record by record.
    merged = ResultStore(shared_root)
    assert sorted(merged.keys()) == sorted(ref_store.keys())
    for key in merged.keys():
        assert merged.path(key).read_bytes() == ref_store.path(key).read_bytes()
    assert list(shared_root.rglob("*.tmp")) == []
    assert list(shared_root.rglob("*.corrupt")) == []

    # The merged store resumes with zero execution at full width.
    warm = run_arena(UNION_GRID, merged, config=CONFIG, cases=cases)
    assert warm.executed == 0
    assert warm.loaded == reference.executed
    assert render_arena_matrices(warm) == reference_text
