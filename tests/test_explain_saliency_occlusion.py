"""GradExplainer and OcclusionExplainer: correctness and inspector power."""

import numpy as np
import pytest

from repro.attacks import FGA
from repro.explain import GradExplainer, OcclusionExplainer
from repro.explain.base import subgraph_edges
from repro.graph import Graph, k_hop_subgraph, normalize_adjacency
from repro.metrics import ndcg_at_k


@pytest.fixture(scope="module")
def explained_node(tiny_graph, clean_predictions):
    """A mid-degree node whose prediction we explain."""
    degrees = tiny_graph.degrees()
    eligible = np.flatnonzero((degrees >= 3) & (degrees <= 6))
    return int(eligible[0])


class TestSubgraphEdges:
    def test_edges_are_global_and_canonical(self, tiny_graph, explained_node):
        subgraph, nodes, _ = k_hop_subgraph(tiny_graph, explained_node, 2)
        edges, rows, cols = subgraph_edges(subgraph, nodes)
        assert len(edges) == subgraph.num_edges
        for (u, v), r, c in zip(edges, rows, cols):
            assert u < v
            assert {u, v} == {int(nodes[r]), int(nodes[c])}
            assert tiny_graph.has_edge(u, v)

    def test_local_indices_upper_triangular(self, tiny_graph, explained_node):
        subgraph, nodes, _ = k_hop_subgraph(tiny_graph, explained_node, 2)
        _, rows, cols = subgraph_edges(subgraph, nodes)
        assert np.all(rows < cols)


class TestGradExplainer:
    def test_explains_all_subgraph_edges(
        self, tiny_graph, trained_model, explained_node
    ):
        explanation = GradExplainer(trained_model).explain_node(
            tiny_graph, explained_node
        )
        subgraph, _, _ = k_hop_subgraph(tiny_graph, explained_node, 2)
        assert len(explanation) == subgraph.num_edges

    def test_unsigned_weights_nonnegative(
        self, tiny_graph, trained_model, explained_node
    ):
        explanation = GradExplainer(trained_model).explain_node(
            tiny_graph, explained_node
        )
        assert np.all(explanation.weights >= 0)

    def test_label_defaults_to_model_prediction(
        self, tiny_graph, trained_model, clean_predictions, explained_node
    ):
        explanation = GradExplainer(trained_model).explain_node(
            tiny_graph, explained_node
        )
        assert explanation.predicted_label == int(clean_predictions[explained_node])

    def test_signed_magnitude_consistency(
        self, tiny_graph, trained_model, explained_node
    ):
        signed = GradExplainer(trained_model, signed=True).explain_node(
            tiny_graph, explained_node
        )
        unsigned = GradExplainer(trained_model).explain_node(
            tiny_graph, explained_node
        )
        assert signed.edges == unsigned.edges
        assert np.allclose(np.abs(signed.weights), unsigned.weights)

    def test_deterministic(self, tiny_graph, trained_model, explained_node):
        first = GradExplainer(trained_model).explain_node(tiny_graph, explained_node)
        second = GradExplainer(trained_model).explain_node(tiny_graph, explained_node)
        assert np.allclose(first.weights, second.weights)

    def test_detects_fga_edges(self, tiny_graph, trained_model, flippable_victim):
        """FGA picks edges by this very gradient — saliency must rank them."""
        node, target_label, budget = flippable_victim
        result = FGA(trained_model, seed=3).attack(
            tiny_graph, node, target_label, budget
        )
        assert result.added_edges
        explanation = GradExplainer(trained_model).explain_node(
            result.perturbed_graph, node
        )
        score = ndcg_at_k(explanation.ranking(), result.added_edges, k=15)
        assert score > 0.2


class TestOcclusionExplainer:
    def test_explains_all_subgraph_edges(
        self, tiny_graph, trained_model, explained_node
    ):
        explanation = OcclusionExplainer(trained_model).explain_node(
            tiny_graph, explained_node
        )
        subgraph, _, _ = k_hop_subgraph(tiny_graph, explained_node, 2)
        assert len(explanation) == subgraph.num_edges

    def test_weight_matches_manual_occlusion(
        self, tiny_graph, trained_model, explained_node
    ):
        """The reported weight must equal the actual probability drop."""
        from repro.autodiff.tensor import Tensor, no_grad

        explanation = OcclusionExplainer(trained_model).explain_node(
            tiny_graph, explained_node
        )
        subgraph, nodes, local = k_hop_subgraph(tiny_graph, explained_node, 2)
        edge = explanation.edges[0]
        weight = float(explanation.weights[0])

        def probability(graph_like):
            normalized = normalize_adjacency(graph_like.adjacency)
            with no_grad():
                logits = trained_model(
                    normalized, Tensor(graph_like.features)
                ).data[local]
            shifted = np.exp(logits - logits.max())
            return (shifted / shifted.sum())[explanation.predicted_label]

        node_to_local = {int(g): i for i, g in enumerate(nodes)}
        local_edge = (node_to_local[edge[0]], node_to_local[edge[1]])
        occluded = subgraph.with_edges_removed([local_edge])
        assert weight == pytest.approx(
            probability(subgraph) - probability(occluded), abs=1e-9
        )

    def test_absolute_mode(self, tiny_graph, trained_model, explained_node):
        signed = OcclusionExplainer(trained_model).explain_node(
            tiny_graph, explained_node
        )
        absolute = OcclusionExplainer(trained_model, absolute=True).explain_node(
            tiny_graph, explained_node
        )
        assert np.allclose(np.abs(signed.weights), absolute.weights)

    def test_bridge_edge_dominates_on_barbell(self):
        """On a two-cluster graph, the bridge is the load-bearing edge."""
        # Two 4-cliques joined by a single bridge (3, 4); features separate
        # the clusters so a 1-layer-ish signal exists.
        n = 8
        adjacency = np.zeros((n, n))
        for group in (range(4), range(4, 8)):
            for u in group:
                for v in group:
                    if u < v:
                        adjacency[u, v] = adjacency[v, u] = 1.0
        adjacency[3, 4] = adjacency[4, 3] = 1.0
        features = np.zeros((n, 2))
        features[:4, 0] = 1.0
        features[4:, 1] = 1.0
        labels = np.array([0] * 4 + [1] * 4)
        graph = Graph(adjacency, features, labels, name="barbell")

        from repro.nn import GCN, train_node_classifier

        rng = np.random.default_rng(0)
        model = GCN(2, 4, 2, rng, dropout=0.0)
        train_node_classifier(
            model,
            normalize_adjacency(graph.adjacency),
            graph.features,
            graph.labels,
            np.arange(n),
            np.arange(n),
            np.arange(n),
            epochs=120,
        )
        explanation = OcclusionExplainer(trained_model := model).explain_node(graph, 3)
        # Removing the bridge pulls node 3 away from cluster-1 evidence, so
        # the bridge must carry a nonzero influence weight.
        bridge_weight = explanation.weight_of(3, 4)
        assert not np.isnan(bridge_weight)
        assert abs(bridge_weight) > 1e-6

    def test_detects_fga_edges_at_least_weakly(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        result = FGA(trained_model, seed=3).attack(
            tiny_graph, node, target_label, budget
        )
        explanation = OcclusionExplainer(trained_model).explain_node(
            result.perturbed_graph, node
        )
        # Occlusion sees exact influence: adversarial edges that flipped the
        # prediction must carry positive supporting weight.
        weights = [explanation.weight_of(u, v) for u, v in result.added_edges]
        assert any(w > 0 for w in weights if not np.isnan(w))
