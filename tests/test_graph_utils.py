"""Normalization and k-hop subgraph utilities."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.autodiff.gradcheck import gradcheck
from repro.autodiff.tensor import Tensor, grad
from repro.graph import (
    Graph,
    edge_tuple,
    edges_to_mask_index,
    k_hop_nodes,
    k_hop_subgraph,
    normalize_adjacency,
    normalize_adjacency_tensor,
)


def star_graph(n=5):
    adjacency = sp.lil_matrix((n, n))
    for leaf in range(1, n):
        adjacency[0, leaf] = adjacency[leaf, 0] = 1
    return Graph(adjacency, np.eye(n), np.zeros(n))


class TestNormalization:
    def test_known_two_node_value(self):
        adjacency = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        normalized = normalize_adjacency(adjacency).toarray()
        # A+I has degree 2 everywhere → every entry 1/2.
        assert np.allclose(normalized, np.full((2, 2), 0.5))

    def test_rows_scale_like_symmetric_norm(self):
        graph = star_graph(5)
        normalized = normalize_adjacency(graph.adjacency).toarray()
        assert np.allclose(normalized, normalized.T)
        # diag entries are 1/(d+1)
        degrees = graph.degrees()
        assert np.allclose(np.diag(normalized), 1.0 / (degrees + 1))

    def test_tensor_matches_sparse(self, tiny_graph):
        sparse_version = normalize_adjacency(tiny_graph.adjacency).toarray()
        tensor_version = normalize_adjacency_tensor(
            Tensor(tiny_graph.dense_adjacency())
        ).data
        assert np.allclose(sparse_version, tensor_version, atol=1e-12)

    def test_tensor_version_differentiable(self):
        adjacency = Tensor(
            np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]]),
            requires_grad=True,
        )
        gradcheck(lambda a: (normalize_adjacency_tensor(a) ** 2).sum(), [adjacency])

    def test_no_self_loops_option(self):
        adjacency = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        normalized = normalize_adjacency(adjacency, self_loops=False).toarray()
        assert np.allclose(normalized, np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_isolated_node_handled(self):
        adjacency = sp.csr_matrix((3, 3))
        normalized = normalize_adjacency(adjacency, self_loops=False).toarray()
        assert np.all(np.isfinite(normalized))


class TestKHop:
    def test_matches_networkx_bfs(self, tiny_graph):
        nx_graph = nx.from_scipy_sparse_array(tiny_graph.adjacency)
        for node in [0, 5, 17]:
            for hops in [1, 2]:
                mine = set(k_hop_nodes(tiny_graph.adjacency, node, hops).tolist())
                reference = set(
                    nx.single_source_shortest_path_length(
                        nx_graph, node, cutoff=hops
                    ).keys()
                )
                assert mine == reference

    def test_zero_hops_is_self(self, tiny_graph):
        assert k_hop_nodes(tiny_graph.adjacency, 3, 0).tolist() == [3]

    def test_subgraph_center_index(self, tiny_graph):
        subgraph, nodes, local = k_hop_subgraph(tiny_graph, 10, 2)
        assert nodes[local] == 10
        assert subgraph.num_nodes == nodes.size

    def test_subgraph_extra_nodes_included(self, tiny_graph):
        far_node = int(
            np.setdiff1d(
                np.arange(tiny_graph.num_nodes),
                k_hop_nodes(tiny_graph.adjacency, 0, 2),
            )[0]
        )
        _, nodes, _ = k_hop_subgraph(tiny_graph, 0, 2, extra_nodes=[far_node])
        assert far_node in nodes

    def test_star_one_hop_is_everything(self):
        graph = star_graph(6)
        assert k_hop_nodes(graph.adjacency, 0, 1).size == 6


class TestEdgeHelpers:
    def test_edge_tuple_sorts(self):
        assert edge_tuple(5, 2) == (2, 5)
        assert edge_tuple(2, 5) == (2, 5)

    def test_edges_to_mask_index_drops_absent(self):
        mapping = {1: 0, 2: 1}
        local = edges_to_mask_index([(1, 2), (1, 9)], mapping)
        assert local == [(0, 1)]
