"""Coverage for smaller public surfaces: init, IO branches, helpers."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.nn import init


class TestInit:
    def test_glorot_uniform_bounds(self, rng):
        weights = init.glorot_uniform(rng, 50, 30)
        limit = np.sqrt(6.0 / 80)
        assert weights.shape == (50, 30)
        assert np.abs(weights).max() <= limit

    def test_glorot_normal_scale(self, rng):
        weights = init.glorot_normal(rng, 400, 400)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 800), rel=0.15)

    def test_uniform_range(self, rng):
        weights = init.uniform(rng, (10, 10), low=-0.2, high=0.2)
        assert weights.min() >= -0.2 and weights.max() <= 0.2

    def test_zeros(self):
        assert np.all(init.zeros((3, 2)) == 0)


class TestTensorMethods:
    def test_sqrt_and_abs(self):
        t = Tensor([4.0, 9.0])
        assert np.allclose(t.sqrt().data, [2.0, 3.0])
        assert np.allclose(Tensor([-2.0, 3.0]).abs().data, [2.0, 3.0])

    def test_T_property(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.T.shape == (3, 2)

    def test_exp_log_roundtrip(self):
        t = Tensor([0.5, 1.5])
        assert np.allclose(t.exp().log().data, t.data)

    def test_comparison_operators_return_numpy(self):
        a = Tensor([1.0, 3.0])
        b = Tensor([2.0, 2.0])
        assert isinstance(a < b, np.ndarray)
        assert (a < b).tolist() == [True, False]
        assert (a >= b).tolist() == [False, True]
        assert (a <= 3.0).tolist() == [True, True]
        assert (a > 0.0).tolist() == [True, True]


class TestNpzDenseBranch:
    def test_dense_attr_roundtrip(self, tmp_path):
        import scipy.sparse as sp

        from repro.datasets import load_npz_graph
        from repro.graph import Graph

        adjacency = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        path = tmp_path / "dense.npz"
        np.savez(
            path,
            adj_data=adjacency.data,
            adj_indices=adjacency.indices,
            adj_indptr=adjacency.indptr,
            adj_shape=np.array(adjacency.shape),
            attr=np.eye(2),
            labels=np.array([0, 1]),
        )
        graph = load_npz_graph(path)
        assert isinstance(graph, Graph)
        assert graph.num_features == 2


class TestAggregateRuns:
    def test_mean_std_and_nan_handling(self):
        from repro.experiments import aggregate_runs
        from repro.experiments.pipeline import MethodEvaluation

        def evaluation(asr_t):
            return MethodEvaluation(
                method="X",
                asr=1.0,
                asr_t=asr_t,
                precision=0.1,
                recall=0.2,
                f1=0.15,
                ndcg=0.3,
            )

        runs = [{"X": evaluation(0.8)}, {"X": evaluation(1.0)}]
        mean, std = aggregate_runs(runs, "X", "ASR-T")
        assert mean == pytest.approx(0.9)
        assert std == pytest.approx(0.1)
        mean, std = aggregate_runs(runs, "Y", "ASR-T")
        assert np.isnan(mean)

    def test_nan_values_skipped(self):
        from repro.experiments import aggregate_runs
        from repro.experiments.pipeline import MethodEvaluation

        runs = [
            {
                "X": MethodEvaluation(
                    method="X",
                    asr=1.0,
                    asr_t=float("nan"),
                    precision=0,
                    recall=0,
                    f1=0,
                    ndcg=0,
                )
            }
        ]
        mean, _ = aggregate_runs(runs, "X", "ASR-T")
        assert np.isnan(mean)


class TestMetattackHelpers:
    def test_flip_scores_mask_diagonal_and_lower(self, tiny_graph):
        from repro.attacks.metattack import Metattack

        gradient = np.ones((tiny_graph.num_nodes,) * 2)
        scores = Metattack._flip_scores(gradient, tiny_graph)
        assert np.all(np.isneginf(np.diag(scores)))
        lower = np.tril_indices_from(scores, k=-1)
        assert np.all(np.isneginf(scores[lower]))

    def test_flip_scores_sign_convention(self, tiny_graph):
        from repro.attacks.metattack import Metattack

        gradient = np.ones((tiny_graph.num_nodes,) * 2)
        scores = Metattack._flip_scores(gradient, tiny_graph)
        u, v = next(iter(tiny_graph.edge_set()))
        # Existing edge with positive gradient: removing it would decrease
        # the attacker loss → negative flip gain.
        assert scores[min(u, v), max(u, v)] < 0
