"""Arena store + serialization: exact round-trips and canonical keys.

The arena's resume guarantee reduces to three properties tested here:

* ``AttackResult.to_dict``/``from_dict`` round-trips *exactly* through
  JSON (edges stay canonical tuples, score-trace floats keep every bit,
  history replays DICE-style edge removals);
* the content-addressed :class:`ResultStore` returns byte-equal payloads;
* cell/victim keys are canonical — independent of dict ordering, sensitive
  to every config knob that changes results.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np

from repro.arena import (
    ResultStore,
    ScenarioCell,
    ScenarioGrid,
    canonical_json,
    cell_config,
    content_key,
    victim_key,
)
from repro.attacks import AttackResult, VictimSpec
from repro.experiments import SCALE_PRESETS
from repro.graph import Graph


def random_attack_result(rng, with_history=False):
    """A randomized result shaped like real attack output."""
    num_edges = int(rng.integers(0, 5))
    added = [
        tuple(sorted((int(rng.integers(0, 40)), int(rng.integers(40, 80)))))
        for _ in range(num_edges)
    ]
    trace = []
    for _ in range(int(rng.integers(0, 4))):
        width = int(rng.integers(1, 7))
        trace.append(
            {
                "choice": int(rng.integers(0, 80)),
                "candidates": rng.integers(0, 80, size=width).astype(np.int64),
                # Scale wildly so shortest-repr round-tripping is stressed.
                "scores": rng.standard_normal(width) * 10.0 ** rng.integers(-8, 8),
            }
        )
    history = []
    if with_history:
        history = [
            ("removed", tuple(sorted((int(rng.integers(0, 40)), int(rng.integers(40, 80))))))
            for _ in range(int(rng.integers(1, 3)))
        ]
    return AttackResult(
        perturbed_graph=None,
        added_edges=added,
        target_node=int(rng.integers(0, 80)),
        target_label=None if rng.random() < 0.3 else int(rng.integers(0, 5)),
        original_prediction=int(rng.integers(0, 5)),
        final_prediction=int(rng.integers(0, 5)),
        history=history,
        score_trace=trace,
    )


class TestAttackResultRoundTrip:
    def test_property_exact_round_trip(self, rng):
        """50 random results survive to_dict → JSON → from_dict bit-exactly."""
        for index in range(50):
            result = random_attack_result(rng, with_history=index % 3 == 0)
            payload = json.loads(json.dumps(result.to_dict()))
            back = AttackResult.from_dict(payload)
            assert back.added_edges == result.added_edges
            assert all(isinstance(e, tuple) for e in back.added_edges)
            assert back.target_node == result.target_node
            assert back.target_label == result.target_label
            assert back.original_prediction == result.original_prediction
            assert back.final_prediction == result.final_prediction
            assert back.misclassified == result.misclassified
            assert back.hit_target == result.hit_target
            assert back.history == result.history
            assert len(back.score_trace) == len(result.score_trace)
            for step_in, step_out in zip(result.score_trace, back.score_trace):
                assert step_out["choice"] == step_in["choice"]
                assert step_out["candidates"].dtype == np.int64
                assert step_out["scores"].dtype == np.float64
                assert np.array_equal(step_out["candidates"], step_in["candidates"])
                # Bit-exact floats (shortest-repr JSON round-trip).
                assert np.array_equal(step_out["scores"], step_in["scores"])

    def test_perturbed_graph_replay_adds_and_removes(self):
        """from_dict(graph=...) replays removals before additions."""
        base = Graph(
            np.array(
                [
                    [0, 1, 1, 0],
                    [1, 0, 0, 0],
                    [1, 0, 0, 1],
                    [0, 0, 1, 0],
                ]
            ),
            np.eye(4),
            [0, 1, 0, 1],
        )
        result = AttackResult(
            perturbed_graph=None,
            added_edges=[(1, 3)],
            target_node=1,
            target_label=0,
            original_prediction=1,
            final_prediction=0,
            history=[("removed", (0, 2))],
        )
        back = AttackResult.from_dict(
            json.loads(json.dumps(result.to_dict())), graph=base
        )
        assert back.perturbed_graph.edge_set() == {(0, 1), (1, 3), (2, 3)}
        # The base graph is untouched (immutability convention).
        assert base.edge_set() == {(0, 1), (0, 2), (2, 3)}

    def test_without_graph_perturbed_is_none(self):
        result = random_attack_result(np.random.default_rng(3))
        assert AttackResult.from_dict(result.to_dict()).perturbed_graph is None


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = content_key({"probe": 1})
        payload = {"result": {"x": [1.5, -2.25e-30]}, "schema": 1}
        assert key not in store
        assert store.get(key) is None
        store.put(key, payload)
        assert key in store
        assert store.get(key) == payload

    def test_sharded_layout_and_keys(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        keys = [content_key({"i": i}) for i in range(8)]
        for key in keys:
            store.put(key, {"i": key})
        assert len(store) == 8
        assert sorted(store.keys()) == sorted(keys)
        for key in keys:
            assert store.path(key).parent.name == key[:2]

    def test_overwrite_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = content_key({"again": True})
        store.put(key, {"v": 1})
        store.put(key, {"v": 1})
        assert len(store) == 1
        assert store.get(key) == {"v": 1}

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(content_key({"a": 1}), {})
        store.put(content_key({"b": 2}), {})
        store.clear()
        assert len(store) == 0

    def test_clear_removes_empty_shard_directories(self, tmp_path):
        """--fresh leaves no empty two-level shard dirs behind."""
        store = ResultStore(tmp_path / "store")
        keys = [content_key({"i": i}) for i in range(6)]
        for key in keys:
            store.put(key, {"i": key})
        store.clear()
        assert store.root.is_dir()
        assert [entry for entry in store.root.iterdir()] == []
        # The cleared store resumes cleanly.
        store.put(keys[0], {"again": True})
        assert store.get(keys[0]) == {"again": True}

    def test_failed_put_leaves_no_temp_orphan(self, tmp_path, monkeypatch):
        """A put that dies mid-write cleans its temp file up and re-raises."""
        from pathlib import Path

        store = ResultStore(tmp_path / "store")
        key = content_key({"fault": 1})
        real_write_bytes = Path.write_bytes

        def failing_write_bytes(self, *args, **kwargs):
            if self.name.endswith(".tmp"):
                real_write_bytes(self, b"torn")
                raise OSError("disk full")
            return real_write_bytes(self, *args, **kwargs)

        monkeypatch.setattr(Path, "write_bytes", failing_write_bytes)
        try:
            store.put(key, {"v": 1})
        except OSError as error:
            assert "disk full" in str(error)
        else:  # pragma: no cover - the fault must propagate
            raise AssertionError("put swallowed the write failure")
        monkeypatch.undo()
        # No torn record, no orphaned temp file anywhere under the root.
        assert key not in store
        assert list(store.root.rglob("*.tmp")) == []
        assert list(store.root.rglob(".*.tmp")) == []
        # And the store resumes cleanly after the fault.
        store.put(key, {"v": 2})
        assert store.get(key) == {"v": 2}

    def test_clear_removes_orphaned_temp_files(self, tmp_path):
        """A writer killed mid-put leaves a .tmp; --fresh must remove it."""
        store = ResultStore(tmp_path / "store")
        key = content_key({"kill": 1})
        store.put(key, {})
        orphan = store.path(key).with_name(f".{key}.json.999.tmp")
        orphan.write_text("{}")
        store.clear()
        assert not orphan.exists()
        assert len(store) == 0

    def test_missing_root_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "never-created")
        assert len(store) == 0
        assert store.keys() == []


class TestManifest:
    """The v2 append-only manifest: index, migration, crash tolerance."""

    def test_one_fsynced_line_per_record(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        keys = [content_key({"i": i}) for i in range(5)]
        for key in keys:
            store.put(key, {"i": key})
        manifest = (store.root / "MANIFEST").read_text().splitlines()
        assert len(manifest) == 5
        for line in manifest:
            tag, key, relpath, length, digest = line.split("\t")
            assert tag == "v2"
            assert key in keys
            assert relpath == f"{key[:2]}/{key}.json"
            data = (store.root / relpath).read_bytes()
            assert int(length) == len(data)
            import hashlib

            assert digest == hashlib.sha256(data).hexdigest()

    def test_warm_reopen_serves_from_manifest(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        keys = [content_key({"i": i}) for i in range(8)]
        for key in keys:
            store.put(key, {"i": key})
        warm = ResultStore(store.root)
        assert len(warm) == 8
        assert sorted(warm.keys()) == sorted(keys)
        assert all(key in warm for key in keys)
        assert warm.get(keys[3]) == {"i": keys[3]}

    def test_v1_store_migrates_in_place(self, tmp_path):
        """A manifest-less (v1) record tree rebuilds its manifest on open."""
        store = ResultStore(tmp_path / "store")
        keys = [content_key({"i": i}) for i in range(6)]
        for key in keys:
            store.put(key, {"i": key})
        (store.root / "MANIFEST").unlink()
        migrated = ResultStore(store.root)
        assert sorted(migrated.keys()) == sorted(keys)
        assert (store.root / "MANIFEST").is_file()
        # The records themselves were never rewritten.
        for key in keys:
            assert migrated.get(key) == {"i": key}

    def test_torn_manifest_tail_is_ignored(self, tmp_path):
        """A writer killed mid-append leaves a partial last line: skip it."""
        store = ResultStore(tmp_path / "store")
        keys = [content_key({"i": i}) for i in range(4)]
        for key in keys:
            store.put(key, {"i": key})
        manifest = store.root / "MANIFEST"
        with open(manifest, "a", encoding="utf-8") as handle:
            handle.write("v2\tdeadbeef")  # no newline: torn mid-write
        warm = ResultStore(store.root)
        assert sorted(warm.keys()) == sorted(keys)

    def test_record_without_manifest_line_still_readable(self, tmp_path):
        """Crash between record write and manifest append: get still hits."""
        store = ResultStore(tmp_path / "store")
        key = content_key({"unindexed": 1})
        store.put(key, {"v": 1})
        # Simulate the crash window by dropping the manifest line only.
        (store.root / "MANIFEST").write_text("")
        warm = ResultStore(store.root)
        assert len(warm) == 0  # invisible to the index...
        assert key in warm  # ...but found by the path probe
        assert warm.get(key) == {"v": 1}
        # Compaction adopts it back into the manifest.
        assert warm.compact() == 1
        assert warm.keys() == [key]

    def test_compact_folds_duplicates_and_tombstones(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = content_key({"dup": 1})
        store.put(key, {"v": 1})
        store.put(key, {"v": 1})
        other = content_key({"dup": 2})
        store.put(other, {"v": 2})
        store.path(other).write_bytes(b"{torn")
        assert store.get(other) is None  # quarantined → tombstone line
        lines = (store.root / "MANIFEST").read_text().splitlines()
        assert len(lines) == 4  # 2 puts + 1 put + 1 drop
        assert store.compact() == 1
        assert (store.root / "MANIFEST").read_text().count("\n") == 1
        assert store.keys() == [key]


class TestCorruptRecords:
    """Unreadable records are cache misses, quarantined — never crashes."""

    def test_truncated_record_is_a_miss_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = content_key({"x": 1})
        store.put(key, {"result": {"deep": [1, 2, 3]}})
        path = store.path(key)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert store.get(key) is None
        assert not path.exists()
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists()
        assert key not in store.keys()
        # The store heals on re-put.
        store.put(key, {"result": {"deep": [1, 2, 3]}})
        assert store.get(key) == {"result": {"deep": [1, 2, 3]}}

    def test_checksum_mismatch_is_a_miss(self, tmp_path):
        """Valid JSON with the wrong bytes (disk rot) fails the manifest."""
        store = ResultStore(tmp_path / "store")
        key = content_key({"x": 2})
        store.put(key, {"v": 1})
        store.path(key).write_text('{"v":2}')
        assert store.get(key) is None
        assert store.path(key).with_name(
            store.path(key).name + ".corrupt"
        ).exists()

    def test_quarantine_survives_reopen(self, tmp_path):
        """The drop tombstone keeps a reloaded index from resurrecting it."""
        store = ResultStore(tmp_path / "store")
        key = content_key({"x": 3})
        store.put(key, {"v": 1})
        store.path(key).write_bytes(b"\xff\xfe garbage")
        assert store.get(key) is None
        warm = ResultStore(store.root)
        assert key not in warm.keys()
        assert warm.get(key) is None

    def test_clear_sweeps_quarantined_files(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = content_key({"x": 4})
        store.put(key, {"v": 1})
        store.path(key).write_bytes(b"{")
        assert store.get(key) is None
        store.clear()
        assert list(store.root.iterdir()) == []


class TestNoDirectoryWalks:
    """Warm-store lookups run off the manifest index, not directory scans."""

    @staticmethod
    def _counting(monkeypatch):
        import os as os_module

        calls = {"n": 0}
        real_scandir, real_listdir = os_module.scandir, os_module.listdir

        def scandir(*args, **kwargs):
            calls["n"] += 1
            return real_scandir(*args, **kwargs)

        def listdir(*args, **kwargs):
            calls["n"] += 1
            return real_listdir(*args, **kwargs)

        monkeypatch.setattr(os_module, "scandir", scandir)
        monkeypatch.setattr(os_module, "listdir", listdir)
        return calls

    def test_len_keys_contains_get_never_scan(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        keys = [content_key({"i": i}) for i in range(16)]
        for key in keys:
            store.put(key, {"i": key})
        warm = ResultStore(store.root)
        assert len(warm) == 16  # loads the index (a file read, no walk)
        calls = self._counting(monkeypatch)
        assert len(warm) == 16
        assert sorted(warm.keys()) == sorted(keys)
        assert all(key in warm for key in keys)
        assert warm.get(keys[0]) == {"i": keys[0]}
        assert calls["n"] == 0

    def test_clear_is_one_sweep_not_two_walks(self, tmp_path, monkeypatch):
        """v1 cleared via keys()-walk + per-key unlink + a second glob walk;
        v2 unlinks straight from the index and sweeps the tree once."""
        store = ResultStore(tmp_path / "store")
        keys = [content_key({"i": i}) for i in range(16)]
        for key in keys:
            store.put(key, {"i": key})
        shards = sum(1 for entry in store.root.iterdir() if entry.is_dir())
        calls = self._counting(monkeypatch)
        store.clear()
        # One listing of the root plus one per shard directory — bounded
        # by the tree's directory count, never by the record count twice.
        assert calls["n"] <= shards + 1
        assert len(store) == 0


class TestCanonicalKeys:
    def test_content_key_ignores_dict_order(self):
        assert content_key({"a": 1, "b": [2.5, 3]}) == content_key(
            {"b": [2.5, 3], "a": 1}
        )

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_victim_key_sensitive_to_every_axis(self):
        config = SCALE_PRESETS["smoke"]
        cell = ScenarioCell("cora", 16, "GEAttack", 3, 0)
        spec = VictimSpec(5, 1, 3)
        base = victim_key(cell_config(cell, config), spec)
        variants = [
            victim_key(cell_config(cell, config), VictimSpec(6, 1, 3)),
            victim_key(cell_config(cell, config), VictimSpec(5, 2, 3)),
            victim_key(cell_config(cell, config), VictimSpec(5, 1, 2)),
            victim_key(
                cell_config(ScenarioCell("cora", 16, "Nettack", 3, 0), config),
                spec,
            ),
            victim_key(
                cell_config(ScenarioCell("cora", 16, "GEAttack", 3, 1), config),
                spec,
            ),
            victim_key(
                cell_config(ScenarioCell("cora", 32, "GEAttack", 3, 0), config),
                spec,
            ),
            victim_key(
                cell_config(cell, replace(config, geattack_lam=9.9)), spec
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_attack_params_scoped_to_consumer(self):
        """Changing GEAttack's λ must not invalidate Nettack cells."""
        config = SCALE_PRESETS["smoke"]
        bumped = replace(config, geattack_lam=9.9)
        nettack = ScenarioCell("cora", 16, "Nettack", 3, 0)
        spec = VictimSpec(5, 1, 3)
        assert victim_key(cell_config(nettack, config), spec) == victim_key(
            cell_config(nettack, bumped), spec
        )

    def test_grid_enumeration_deterministic(self):
        grid = ScenarioGrid(
            datasets=("cora",),
            attacks=("FGA-T", "GEAttack"),
            defenses=("none", "jaccard"),
            budget_caps=(2, 3),
            seeds=(0, 1),
        )
        cells = grid.cells()
        assert len(cells) == grid.num_cells == 8
        assert cells == grid.cells()  # stable order
        assert cells[0] == ScenarioCell("cora", 16, "FGA-T", 2, 0)
