"""The consolidated NaN-aware report aggregation helper."""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import (
    DETECTION_KEYS,
    mean_of_finite,
    summarize_reports,
)


class TestMeanOfFinite:
    def test_plain_mean(self):
        reports = [{"f1": 0.2}, {"f1": 0.4}, {"f1": 0.6}]
        assert mean_of_finite(reports, "f1") == np.mean([0.2, 0.4, 0.6])

    def test_nan_entries_are_excluded(self):
        reports = [{"ndcg": 0.5}, {"ndcg": float("nan")}, {"ndcg": 0.7}]
        assert mean_of_finite(reports, "ndcg") == np.mean([0.5, 0.7])

    def test_all_nan_yields_nan(self):
        reports = [{"precision": float("nan")}]
        assert np.isnan(mean_of_finite(reports, "precision"))

    def test_empty_reports_yield_nan(self):
        assert np.isnan(mean_of_finite([], "recall"))


class TestSummarizeReports:
    def test_covers_all_detection_keys(self):
        reports = [
            {"precision": 1.0, "recall": 0.5, "f1": 0.25, "ndcg": 0.75},
            {"precision": 0.0, "recall": 0.5, "f1": 0.75, "ndcg": float("nan")},
        ]
        summary = summarize_reports(reports)
        assert set(summary) == set(DETECTION_KEYS)
        assert summary["precision"] == 0.5
        assert summary["recall"] == 0.5
        assert summary["f1"] == 0.5
        assert summary["ndcg"] == 0.75

    def test_matches_pipeline_aggregation(self, tiny_graph, trained_model):
        """The helper is the single aggregation rule of MethodEvaluation."""
        from repro.attacks import RandomAttack
        from repro.experiments import ExperimentConfig, evaluate_attack_method
        from repro.experiments.pipeline import Victim
        from repro.explain import GNNExplainer

        class Case:
            graph = tiny_graph
            model = trained_model
            config = ExperimentConfig(budget_cap=2, explainer_epochs=5)

        victims = [Victim(node=0, degree=2, target_label=1)]
        evaluation = evaluate_attack_method(
            Case(),
            RandomAttack(trained_model, seed=0),
            victims,
            lambda _graph: GNNExplainer(trained_model, epochs=5, seed=0),
        )
        reports = [
            {key: row[key] for key in DETECTION_KEYS}
            for row in evaluation.per_victim
        ]
        assert evaluation.f1 == mean_of_finite(reports, "f1") or (
            np.isnan(evaluation.f1) and np.isnan(mean_of_finite(reports, "f1"))
        )
