"""Shared fixtures: tiny deterministic graphs and a trained GCN case.

Heavy fixtures are session-scoped so the whole suite stays laptop-fast; all
randomness flows through fixed seeds, never global state.

Setting ``REPRO_TEST_SHUFFLE`` shuffles the collected test order (value =
seed, or ``random`` for a fresh one; the seed is always printed so any
failure reproduces exactly).  CI runs a shuffled job to flush inter-test
state leaks that a fixed collection order would mask forever.
"""

from __future__ import annotations

import os
import random
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

_SHUFFLE_ENV = "REPRO_TEST_SHUFFLE"


def pytest_collection_modifyitems(config, items):
    """Seeded shuffle of the collected order (opt-in via the env var).

    Only items under this directory move — benchmark modules keep their
    order — and the whole permutation is one ``random.Random(seed)``
    draw, so re-running with the printed seed reproduces it exactly.
    """
    spec = os.environ.get(_SHUFFLE_ENV)
    if not spec:
        return
    seed = (
        random.SystemRandom().randrange(2**32)
        if spec.lower() == "random"
        else int(spec)
    )
    here = os.path.dirname(os.path.abspath(__file__))
    ours = [
        index
        for index, item in enumerate(items)
        if str(item.fspath).startswith(here)
    ]
    shuffled = ours[:]
    random.Random(seed).shuffle(shuffled)
    reordered = list(items)
    for slot, source in zip(ours, shuffled):
        reordered[slot] = items[source]
    items[:] = reordered
    print(
        f"\n[{_SHUFFLE_ENV}] shuffled {len(ours)} tests with seed {seed} "
        f"(reproduce: {_SHUFFLE_ENV}={seed})"
    )

from repro.datasets import CitationSpec, generate_citation_graph, random_split
from repro.graph import normalize_adjacency
from repro.nn import GCN, train_node_classifier

TINY_SPEC = CitationSpec(
    num_nodes=110,
    num_edges=260,
    num_classes=4,
    num_features=48,
    homophily=0.82,
    topic_words_per_class=8,
    topic_word_probability=0.25,
    background_word_probability=0.02,
    name="tiny",
)


@pytest.fixture(scope="session")
def tiny_graph():
    """A deterministic ~100-node citation-like graph."""
    return generate_citation_graph(TINY_SPEC, seed=5)


@pytest.fixture(scope="session")
def tiny_split(tiny_graph):
    return random_split(tiny_graph.num_nodes, seed=6, train_fraction=0.3)


@pytest.fixture(scope="session")
def trained_model(tiny_graph, tiny_split):
    """A GCN trained to usable accuracy on the tiny graph."""
    rng = np.random.default_rng(7)
    model = GCN(tiny_graph.num_features, 12, tiny_graph.num_classes, rng, dropout=0.3)
    result = train_node_classifier(
        model,
        normalize_adjacency(tiny_graph.adjacency),
        tiny_graph.features,
        tiny_graph.labels,
        tiny_split.train,
        tiny_split.val,
        tiny_split.test,
        epochs=150,
        patience=40,
    )
    assert result.test_accuracy > 0.4, "fixture model failed to train"
    return model


@pytest.fixture(scope="session")
def clean_predictions(tiny_graph, trained_model):
    return trained_model.predict(
        normalize_adjacency(tiny_graph.adjacency), tiny_graph.features
    )


@pytest.fixture(scope="session")
def flippable_victim(tiny_graph, trained_model, clean_predictions):
    """(node, target_label, budget) for a victim plain FGA can flip."""
    from repro.attacks import FGA

    degrees = tiny_graph.degrees()
    attack = FGA(trained_model, seed=11)
    for node in np.flatnonzero(
        (clean_predictions == tiny_graph.labels) & (degrees >= 2) & (degrees <= 6)
    ):
        node = int(node)
        result = attack.attack(tiny_graph, node, None, int(degrees[node]))
        if result.misclassified:
            return node, int(result.final_prediction), int(degrees[node])
    pytest.skip("no flippable victim on the tiny graph")


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
