"""Synthetic datasets: Table 3 statistics, determinism, splits, IO."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import (
    DATASET_SPECS,
    CitationSpec,
    generate_citation_graph,
    load_dataset,
    load_npz_graph,
    random_split,
    save_npz_graph,
)
from repro.datasets.registry import _scaled_spec


def homophily(graph):
    coo = sp.triu(graph.adjacency, k=1).tocoo()
    return float((graph.labels[coo.row] == graph.labels[coo.col]).mean())


class TestGenerator:
    def test_deterministic_for_seed(self):
        spec = CitationSpec(150, 300, 3, 40)
        a = generate_citation_graph(spec, seed=3)
        b = generate_citation_graph(spec, seed=3)
        assert (a.adjacency != b.adjacency).nnz == 0
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        spec = CitationSpec(150, 300, 3, 40)
        a = generate_citation_graph(spec, seed=3)
        b = generate_citation_graph(spec, seed=4)
        assert (a.adjacency != b.adjacency).nnz > 0

    def test_homophily_close_to_spec(self):
        spec = CitationSpec(400, 1200, 4, 60, homophily=0.8)
        graph = generate_citation_graph(spec, seed=0)
        assert homophily(graph) == pytest.approx(0.8, abs=0.08)

    def test_lcc_is_connected(self):
        spec = CitationSpec(200, 350, 3, 40)
        graph = generate_citation_graph(spec, seed=1)
        count, _ = sp.csgraph.connected_components(graph.adjacency, directed=False)
        assert count == 1

    def test_no_lcc_keeps_all_nodes(self):
        spec = CitationSpec(120, 200, 3, 30)
        graph = generate_citation_graph(spec, seed=1, take_lcc=False)
        assert graph.num_nodes == 120

    def test_features_binary_and_nonempty(self):
        spec = CitationSpec(150, 300, 3, 40)
        graph = generate_citation_graph(spec, seed=2)
        assert set(np.unique(graph.features)) <= {0.0, 1.0}
        assert np.all(graph.features.sum(axis=1) >= 1)

    def test_degree_distribution_heavy_tailed(self):
        spec = CitationSpec(600, 1500, 4, 50, degree_exponent=2.4)
        graph = generate_citation_graph(spec, seed=0)
        degrees = graph.degrees()
        assert degrees.max() >= 4 * degrees.mean()

    def test_features_carry_class_signal(self):
        spec = CitationSpec(300, 600, 3, 60, topic_word_probability=0.3)
        graph = generate_citation_graph(spec, seed=0)
        # Mean within-class feature correlation should beat cross-class.
        centroids = np.stack(
            [graph.features[graph.labels == c].mean(axis=0) for c in range(3)]
        )
        separations = []
        for c in range(3):
            members = graph.features[graph.labels == c]
            own = np.linalg.norm(members - centroids[c], axis=1).mean()
            other = min(
                np.linalg.norm(members - centroids[o], axis=1).mean()
                for o in range(3)
                if o != c
            )
            separations.append(other - own)
        assert np.mean(separations) > 0


class TestRegistry:
    @pytest.mark.parametrize("name", ["citeseer", "cora", "acm"])
    def test_scaled_loads(self, name):
        graph = load_dataset(name, scale=0.1, seed=0)
        spec = DATASET_SPECS[name]
        assert graph.num_classes == spec.num_classes
        assert graph.num_nodes > 50
        # Average degree should roughly match the full-size dataset.
        full_avg = 2.0 * spec.num_edges / spec.num_nodes
        scaled_avg = 2.0 * graph.num_edges / graph.num_nodes
        assert scaled_avg == pytest.approx(full_avg, rel=0.5)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("pubmed")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("cora", scale=0.0)
        with pytest.raises(ValueError):
            load_dataset("cora", scale=1.5)

    def test_full_scale_spec_is_table3(self):
        spec = DATASET_SPECS["cora"]
        assert (spec.num_nodes, spec.num_edges) == (2485, 5069)
        assert (spec.num_classes, spec.num_features) == (7, 1433)
        spec = DATASET_SPECS["citeseer"]
        assert (spec.num_nodes, spec.num_edges) == (2110, 3668)
        spec = DATASET_SPECS["acm"]
        assert (spec.num_nodes, spec.num_edges) == (3025, 13128)

    def test_scaled_spec_preserves_classes(self):
        scaled = _scaled_spec(DATASET_SPECS["acm"], 0.2)
        assert scaled.num_classes == 3
        assert scaled.num_nodes == pytest.approx(605, abs=5)


class TestSplits:
    def test_partition_is_exhaustive_and_disjoint(self):
        split = random_split(100, seed=0)
        combined = np.concatenate([split.train, split.val, split.test])
        assert np.array_equal(np.sort(combined), np.arange(100))

    def test_paper_fractions(self):
        split = random_split(1000, seed=1)
        assert split.sizes == (100, 100, 800)

    def test_deterministic(self):
        a = random_split(50, seed=3)
        b = random_split(50, seed=3)
        assert np.array_equal(a.train, b.train)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            random_split(10, train_fraction=0.6, val_fraction=0.5)


class TestNpzIO:
    def test_round_trip(self, tmp_path, tiny_graph):
        path = tmp_path / "graph.npz"
        save_npz_graph(path, tiny_graph)
        loaded = load_npz_graph(path, name="tiny")
        assert (loaded.adjacency != tiny_graph.adjacency).nnz == 0
        assert np.array_equal(loaded.features, tiny_graph.features)
        assert np.array_equal(loaded.labels, tiny_graph.labels)
        assert loaded.name == "tiny"
