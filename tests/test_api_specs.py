"""Spec round-trips and store-key compatibility of the repro.api façade.

Three contracts guard the refactor:

1. **Round-trip exactness** — ``Spec.from_dict(spec.to_dict()) == spec``
   for every registered attack, defense and explainer (and the composite
   ``ScenarioSpec``), so specs can travel through JSON losslessly.
2. **Store-key compatibility** — spec-derived cell configs hash to
   byte-identical content keys as the pre-refactor hand-maintained
   implementation (frozen below), so arena stores written before the spec
   layer existed stay warm after it.
3. **Threat-axis key compatibility** — a default (white-box oblivious)
   threat model is invisible to the key: every default-threat cell hashes
   to the exact SHA-256 recorded *before the threat axis existed*
   (``tests/data/legacy_store_keys.json``, generated at the pre-threat
   commit and frozen), while any non-default threat moves the key.
"""

import json
import os
from dataclasses import replace

import pytest

from repro.api.registry import EXPLAINERS, attack_spec, defense_spec, scenario_spec
from repro.api.specs import (
    SCHEMA_VERSION,
    AttackSpec,
    DatasetSpec,
    DefenseSpec,
    EvalSpec,
    ExplainerSpec,
    ModelSpec,
    ScenarioSpec,
    ThreatModel,
    VictimPolicy,
)
from repro.arena.grid import (
    ScenarioCell,
    canonical_json,
    cell_config,
    content_key,
    victim_key,
)
from repro.attacks import ATTACKS, EXTENSION_ATTACKS, AttackResult, VictimSpec
from repro.datasets import load_dataset
from repro.defense import DEFENSES
from repro.experiments import SCALE_PRESETS, ExperimentConfig

SMOKE = SCALE_PRESETS["smoke"]
#: A second operating point, to prove keys react to every scoped knob.
TWEAKED = ExperimentConfig(
    dataset_scale=0.08,
    geattack_lam=1.5,
    geattack_inner_steps=7,
    geattack_inner_lr=0.2,
    explainer_epochs=33,
    explanation_size=11,
    pg_epochs=4,
    pg_instances=3,
)

EDGE_ATTACKS = sorted({**ATTACKS, **EXTENSION_ATTACKS})


def legacy_attack_params(name, config):
    """Frozen copy of the pre-refactor ``arena.grid._attack_params``."""
    if name == "GEAttack":
        return {
            "lam": config.geattack_lam,
            "inner_steps": config.geattack_inner_steps,
            "inner_lr": config.geattack_inner_lr,
        }
    if name == "GEAttack-PG":
        return {
            "lam": config.geattack_lam,
            "inner_steps": min(config.geattack_inner_steps, 2),
            "pg_epochs": config.pg_epochs,
            "pg_instances": config.pg_instances,
        }
    if name == "FGA-T&E":
        return {
            "explainer_epochs": config.explainer_epochs,
            "explanation_size": config.explanation_size,
        }
    return {}


def legacy_cell_config(cell, config):
    """Frozen copy of the pre-refactor ``arena.grid.cell_config``."""
    return {
        "schema": 1,
        "dataset": {"name": cell.dataset, "scale": config.dataset_scale},
        "model": {
            "hidden": cell.hidden,
            "epochs": config.epochs,
            "learning_rate": config.learning_rate,
            "weight_decay": config.weight_decay,
            "dropout": config.dropout,
        },
        "victim_protocol": {
            "num_victims": config.num_victims,
            "margin_group": config.margin_group,
            "min_degree": config.min_degree,
            "max_degree": config.max_degree,
        },
        "attack": {"name": cell.attack, **legacy_attack_params(cell.attack, config)},
        "budget_cap": cell.budget_cap,
        "seed": cell.seed,
    }


class TestRoundTrips:
    @pytest.mark.parametrize("name", EDGE_ATTACKS)
    @pytest.mark.parametrize("config", [SMOKE, TWEAKED], ids=["smoke", "tweaked"])
    def test_attack_spec_round_trip(self, name, config):
        spec = attack_spec(name, config)
        assert AttackSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("name", sorted(DEFENSES))
    def test_defense_spec_round_trip(self, name):
        spec = defense_spec(name, SMOKE)
        assert DefenseSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("kind", sorted(EXPLAINERS))
    def test_explainer_spec_round_trip(self, kind):
        recipe = EXPLAINERS[kind]
        spec = ExplainerSpec(
            kind, {p.name: p.resolve(SMOKE) for p in recipe.params}
        )
        assert ExplainerSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "spec",
        [
            DatasetSpec("acm", 0.25),
            ModelSpec.from_config(TWEAKED, hidden=48),
            VictimPolicy.from_config(TWEAKED),
            EvalSpec.from_config(TWEAKED),
        ],
        ids=lambda spec: type(spec).__name__,
    )
    def test_simple_spec_round_trip(self, spec):
        assert type(spec).from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("name", EDGE_ATTACKS)
    def test_scenario_spec_round_trip(self, name):
        spec = scenario_spec(ScenarioCell("citeseer", 32, name, 5, 3), TWEAKED)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_scenario_spec_rejects_other_schema(self):
        data = scenario_spec(
            ScenarioCell("cora", 16, "FGA", 3, 0), SMOKE
        ).to_dict()
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            ScenarioSpec.from_dict(data)

    def test_with_params_overrides(self):
        spec = attack_spec("GEAttack", SMOKE)
        bumped = spec.with_params(lam=2.5)
        assert dict(bumped.params)["lam"] == 2.5
        assert dict(bumped.params)["inner_steps"] == SMOKE.geattack_inner_steps
        assert dict(spec.params)["lam"] == SMOKE.geattack_lam  # original frozen

    def test_params_canonical_order(self):
        a = AttackSpec("X", {"b": 1, "a": 2})
        b = AttackSpec("X", (("a", 2), ("b", 1)))
        assert a == b


class TestStoreKeyCompatibility:
    """Old stores must stay warm: spec-derived keys ≡ pre-refactor keys."""

    @pytest.mark.parametrize("name", EDGE_ATTACKS)
    @pytest.mark.parametrize("config", [SMOKE, TWEAKED], ids=["smoke", "tweaked"])
    def test_cell_config_bytes_match_legacy(self, name, config):
        cell = ScenarioCell("cora", 16, name, 3, 0)
        assert canonical_json(cell_config(cell, config)) == canonical_json(
            legacy_cell_config(cell, config)
        )

    @pytest.mark.parametrize("name", EDGE_ATTACKS)
    def test_victim_keys_bytes_match_legacy(self, name):
        cell = ScenarioCell("citeseer", 24, name, 4, 7)
        victim = VictimSpec(node=11, target_label=2, budget=3)
        assert victim_key(cell_config(cell, SMOKE), victim) == victim_key(
            legacy_cell_config(cell, SMOKE), victim
        )

    def test_scoped_invalidation(self):
        """Changing a GEAttack knob must not move Nettack's keys."""
        cell_ge = ScenarioCell("cora", 16, "GEAttack", 3, 0)
        cell_ne = ScenarioCell("cora", 16, "Nettack", 3, 0)
        bumped = replace(SMOKE, geattack_lam=9.9)
        assert canonical_json(cell_config(cell_ge, SMOKE)) != canonical_json(
            cell_config(cell_ge, bumped)
        )
        assert canonical_json(cell_config(cell_ne, SMOKE)) == canonical_json(
            cell_config(cell_ne, bumped)
        )


#: Cell-config and victim SHA-256 pairs recorded at the commit *before*
#: the threat axis existed.  Default-threat cells must reproduce them
#: byte-for-byte forever: every key move silently cold-starts every store
#: a user has on disk.
FROZEN_KEYS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "data", "legacy_store_keys.json"
)


class TestFrozenLegacyKeys:
    """Pre-threat-axis stores must resume with zero re-executed attacks."""

    @pytest.fixture(scope="class")
    def frozen(self):
        with open(FROZEN_KEYS_PATH) as handle:
            return json.load(handle)

    @pytest.mark.parametrize("name", EDGE_ATTACKS)
    @pytest.mark.parametrize("label", ["smoke", "tweaked"])
    def test_default_threat_cells_keep_frozen_keys(self, frozen, name, label):
        config = SMOKE if label == "smoke" else TWEAKED
        cell = ScenarioCell("cora", 16, name, 3, 0)
        cfg = cell_config(cell, config)
        entry = frozen[f"{name}/{label}"]
        assert content_key(cfg) == entry["cell_sha"]
        assert (
            victim_key(cfg, VictimSpec(node=11, target_label=2, budget=3))
            == entry["victim_sha"]
        )

    @pytest.mark.parametrize("name", ["GEAttack", "Nettack"])
    def test_off_default_cells_keep_frozen_keys(self, frozen, name):
        cell = ScenarioCell("citeseer", 24, name, 4, 7)
        cfg = cell_config(cell, SMOKE)
        entry = frozen[f"{name}/citeseer-h24-b4-s7"]
        assert content_key(cfg) == entry["cell_sha"]
        assert (
            victim_key(cfg, VictimSpec(node=3, target_label=None, budget=2))
            == entry["victim_sha"]
        )

    def test_explicit_default_threat_is_key_invisible(self, frozen):
        explicit = ScenarioCell(
            "cora", 16, "GEAttack", 3, 0, ThreatModel.parse("white_box+oblivious")
        )
        assert (
            content_key(cell_config(explicit, SMOKE))
            == frozen["GEAttack/smoke"]["cell_sha"]
        )

    @pytest.mark.parametrize(
        "threat",
        ["surrogate", "adaptive:jaccard", "surrogate:h8,s3+adaptive:svd"],
    )
    def test_non_default_threats_move_every_key(self, frozen, threat):
        cell = ScenarioCell("cora", 16, "GEAttack", 3, 0, ThreatModel.parse(threat))
        cfg = cell_config(cell, SMOKE)
        assert content_key(cfg) != frozen["GEAttack/smoke"]["cell_sha"]
        assert "threat" in cfg

    def test_unresolved_and_resolved_surrogates_share_keys(self):
        from repro.threat import resolve_threat

        open_threat = ThreatModel.parse("surrogate")
        pinned = resolve_threat(open_threat, SMOKE, 0)
        assert pinned.surrogate_hidden is not None
        assert pinned.surrogate_seed is not None
        key = lambda threat: content_key(
            cell_config(ScenarioCell("cora", 16, "FGA-T", 3, 0, threat), SMOKE)
        )
        assert key(open_threat) == key(pinned)


class TestArchAxisKeys:
    """The arch axis mirrors the threat axis: default-invisible in keys.

    A store written before the architecture axis existed must resume
    warm — ``executed 0 attacks`` — under the arch-aware code, which is
    exactly the default-arch cells hashing to the frozen pre-arch SHAs.
    """

    @pytest.fixture(scope="class")
    def frozen(self):
        with open(FROZEN_KEYS_PATH) as handle:
            return json.load(handle)

    def test_explicit_default_arch_is_key_invisible(self, frozen):
        explicit = ScenarioCell("cora", 16, "GEAttack", 3, 0, arch="gcn")
        cfg = cell_config(explicit, SMOKE)
        assert "arch" not in cfg["model"]
        assert content_key(cfg) == frozen["GEAttack/smoke"]["cell_sha"]

    @pytest.mark.parametrize("arch", ["sage", "gin", "gat"])
    def test_non_default_arch_moves_every_key(self, frozen, arch):
        cell = ScenarioCell("cora", 16, "GEAttack", 3, 0, arch=arch)
        cfg = cell_config(cell, SMOKE)
        assert cfg["model"]["arch"] == arch
        assert content_key(cfg) != frozen["GEAttack/smoke"]["cell_sha"]

    def test_model_spec_omits_default_arch(self):
        spec = ModelSpec.from_config(SMOKE, hidden=16)
        assert "arch" not in spec.to_dict()
        assert ModelSpec.from_dict(spec.to_dict()) == spec
        gat = ModelSpec.from_config(SMOKE, hidden=16, arch="gat")
        assert gat.to_dict()["arch"] == "gat"
        assert ModelSpec.from_dict(gat.to_dict()) == gat

    def test_same_arch_surrogate_normalizes_to_default_key(self):
        """``surrogate:gcn`` on a gcn victim ≡ plain ``surrogate``."""
        from repro.threat import resolve_threat

        explicit = ThreatModel.parse("surrogate:gcn")
        assert resolve_threat(explicit, SMOKE, 0).surrogate_arch is None
        key = lambda threat: content_key(
            cell_config(ScenarioCell("cora", 16, "FGA-T", 3, 0, threat), SMOKE)
        )
        assert key(explicit) == key(ThreatModel.parse("surrogate"))
        # …while a genuinely cross-arch surrogate moves the key.
        assert key(ThreatModel.parse("surrogate:gat")) != key(explicit)

    def test_pre_arch_store_resumes_with_zero_executed(self, tmp_path):
        """The acceptance criterion, end to end on a tiny grid."""
        from repro.arena import ResultStore, ScenarioGrid, run_arena
        from repro.experiments import ExperimentConfig

        config = ExperimentConfig(
            dataset_scale=0.05,
            num_seeds=1,
            hidden=8,
            epochs=15,
            num_victims=2,
            margin_group=1,
            budget_cap=2,
        )
        axes = dict(
            attacks=("FGA",), defenses=("none",), budget_caps=(2,), seeds=(0,)
        )
        store = ResultStore(tmp_path / "store")
        # A grid that never mentions the arch axis — the pre-arch shape.
        cold = run_arena(ScenarioGrid(**axes), store, config=config, jobs=1)
        assert cold.executed > 0
        # Resuming under an explicitly arch-aware grid stays warm…
        warm = run_arena(
            ScenarioGrid(archs=("gcn",), **axes), store, config=config, jobs=1
        )
        assert warm.stats_line() == (
            f"executed 0 attacks, {cold.executed} victim results served "
            "from the store"
        )
        # …and widening the axis executes only the new architecture's cells.
        wider = run_arena(
            ScenarioGrid(archs=("gcn", "sage"), **axes),
            store,
            config=config,
            jobs=1,
        )
        assert wider.executed == cold.executed
        assert wider.loaded == cold.executed


class TestThreatModelSpec:
    @pytest.mark.parametrize(
        "threat",
        [
            ThreatModel(),
            ThreatModel.parse("surrogate"),
            ThreatModel.parse("surrogate:h8,s3"),
            ThreatModel.parse("adaptive:jaccard"),
            ThreatModel.parse("surrogate:h4+adaptive:explainer"),
        ],
        ids=lambda threat: threat.label(),
    )
    def test_round_trip_through_json(self, threat):
        data = json.loads(json.dumps(threat.to_dict()))
        assert ThreatModel.from_dict(data) == threat

    def test_parse_defaults_and_aliases(self):
        assert ThreatModel.parse("white_box+oblivious") == ThreatModel()
        assert ThreatModel.parse("oblivious").is_default
        assert ThreatModel.parse("preprocess_aware:svd") == ThreatModel.parse(
            "adaptive:svd"
        )
        surrogate = ThreatModel.parse("surrogate:s5")
        assert surrogate.surrogate_seed == 5
        assert surrogate.surrogate_hidden is None

    @pytest.mark.parametrize(
        "text",
        [
            "sideways",
            "adaptive",
            "surrogate:9x",
            "adaptive:",
            "surrogate:h-3",
            "surrogate:gat,gcn",
        ],
    )
    def test_parse_rejects_bad_grammar(self, text):
        with pytest.raises(ValueError):
            ThreatModel.parse(text)

    def test_parse_surrogate_arch_token(self):
        threat = ThreatModel.parse("surrogate:gat,h8")
        assert threat.surrogate_arch == "gat"
        assert threat.surrogate_hidden == 8
        assert threat.label() == "surrogate(gat,h8)+oblivious"
        data = json.loads(json.dumps(threat.to_dict()))
        assert ThreatModel.from_dict(data) == threat
        # Unknown-but-well-formed arch names parse; validation against the
        # registry happens at submit time (CLI / service / Session).
        assert ThreatModel.parse("surrogate:x9").surrogate_arch == "x9"

    def test_validation_rejects_inconsistent_fields(self):
        with pytest.raises(ValueError, match="surrogate"):
            ThreatModel(knowledge="white_box", surrogate_seed=3)
        with pytest.raises(ValueError, match="defense"):
            ThreatModel(adaptivity="preprocess_aware")
        with pytest.raises(ValueError, match="adapted defense"):
            ThreatModel(defense="jaccard")
        with pytest.raises(ValueError, match="knowledge"):
            ThreatModel(knowledge="psychic")

    def test_twins(self):
        threat = ThreatModel.parse("surrogate:h8+adaptive:jaccard")
        assert threat.oblivious_twin() == ThreatModel.parse("surrogate:h8")
        assert threat.white_box_twin() == ThreatModel.parse("adaptive:jaccard")
        assert threat.oblivious_twin().white_box_twin().is_default

    def test_scenario_spec_with_threat_round_trips(self):
        spec = scenario_spec(
            ScenarioCell(
                "cora", 16, "Nettack", 3, 0, ThreatModel.parse("adaptive:explainer")
            ),
            SMOKE,
        )
        data = json.loads(canonical_json(spec.to_dict()))
        assert ScenarioSpec.from_dict(data) == spec
        # The resolved adapted-defense operating point is in the key.
        assert data["threat"]["defense_params"] == [
            ["inspection_window", SMOKE.explanation_size]
        ]


class TestFromDictGuard:
    """AttackResult.from_dict refuses to replay edges on the wrong graph."""

    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("cora", scale=0.06, seed=0)

    def payload(self, node, edges):
        return {
            "target_node": node,
            "target_label": 1,
            "original_prediction": 0,
            "final_prediction": 1,
            "added_edges": edges,
            "history": [],
            "score_trace": [],
        }

    def test_matching_graph_replays(self, graph):
        result = AttackResult.from_dict(
            self.payload(3, [[3, 5]]), graph=graph
        )
        assert result.perturbed_graph is not None
        assert (3, 5) in result.perturbed_graph.edge_set()

    def test_victim_out_of_range_raises(self, graph):
        with pytest.raises(ValueError, match="different graph"):
            AttackResult.from_dict(
                self.payload(graph.num_nodes + 4, [[0, 1]]), graph=graph
            )

    def test_edge_endpoint_out_of_range_raises(self, graph):
        with pytest.raises(ValueError, match="wrong graph"):
            AttackResult.from_dict(
                self.payload(0, [[0, graph.num_nodes]]), graph=graph
            )

    def test_history_endpoint_out_of_range_raises(self, graph):
        data = self.payload(0, [])
        data["history"] = [["removed", [1, graph.num_nodes + 2]]]
        with pytest.raises(ValueError, match="wrong graph"):
            AttackResult.from_dict(data, graph=graph)

    def test_metrics_only_use_needs_no_graph(self, graph):
        result = AttackResult.from_dict(self.payload(10 ** 9, [[0, 10 ** 9]]))
        assert result.perturbed_graph is None
        assert result.misclassified
