"""Property-based tests (hypothesis) on the autodiff engine's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import autodiff as ad
from repro.autodiff import ops
from repro.autodiff.tensor import Tensor

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


@settings(max_examples=40, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_addition_commutes(a, b):
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    assert np.array_equal(left, right)


@settings(max_examples=40, deadline=None)
@given(arrays((4,)))
def test_grad_of_sum_is_ones(data):
    x = Tensor(data, requires_grad=True)
    g = ad.grad(x.sum(), x)
    assert np.array_equal(g.data, np.ones(4))


@settings(max_examples=40, deadline=None)
@given(arrays((3, 3)), arrays((3, 3)))
def test_matmul_matches_numpy(a, b):
    out = (Tensor(a) @ Tensor(b)).data
    assert np.allclose(out, a @ b)


@settings(max_examples=40, deadline=None)
@given(arrays((2, 5)))
def test_softmax_is_distribution(data):
    probs = ad.softmax(Tensor(data), axis=-1).data
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=-1), 1.0)


@settings(max_examples=40, deadline=None)
@given(arrays((2, 5)), st.floats(min_value=-50, max_value=50))
def test_log_softmax_shift_invariance(data, shift):
    base = ad.log_softmax(Tensor(data)).data
    shifted = ad.log_softmax(Tensor(data + shift)).data
    assert np.allclose(base, shifted, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(arrays((4,)), arrays((4,)))
def test_grad_is_linear_in_output_weighting(a, b):
    x = Tensor(a, requires_grad=True)
    weights = Tensor(b)
    g_weighted = ad.grad(x * x, x, grad_outputs=weights)
    g_plain = ad.grad((x * x).sum(), x)
    assert np.allclose(g_weighted.data, g_plain.data * b, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(arrays((3, 2)))
def test_transpose_is_involution(data):
    x = Tensor(data, requires_grad=True)
    double = ops.transpose(ops.transpose(x))
    assert np.array_equal(double.data, data)
    g = ad.grad(double.sum(), x)
    assert np.array_equal(g.data, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(arrays((6,)), st.integers(min_value=0, max_value=5))
def test_scatter_then_gather_roundtrip(data, position):
    x = Tensor(data, requires_grad=True)
    picked = x[np.array([position])]
    g = ad.grad(picked.sum(), x)
    expected = np.zeros(6)
    expected[position] = 1.0
    assert np.array_equal(g.data, expected)


@settings(max_examples=30, deadline=None)
@given(arrays((3, 3)))
def test_sum_axis_decomposition(data):
    x = Tensor(data)
    total = ops.tensor_sum(x).item()
    by_rows = ops.tensor_sum(ops.tensor_sum(x, axis=0)).item()
    assert np.isclose(total, by_rows)


@settings(max_examples=30, deadline=None)
@given(arrays((4, 2)))
def test_sigmoid_bounded_and_monotone_gradient(data):
    x = Tensor(data, requires_grad=True)
    out = ops.sigmoid(x)
    assert np.all(out.data > 0) and np.all(out.data < 1)
    g = ad.grad(out.sum(), x)
    assert np.all(g.data > 0)  # sigmoid is strictly increasing
    assert np.all(g.data <= 0.25 + 1e-12)  # derivative peaks at 1/4
