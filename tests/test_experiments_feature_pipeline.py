"""Integration: the feature-attack evaluation pipeline end to end."""

import numpy as np
import pytest

from repro.attacks import FeatureFGA
from repro.experiments import (
    SCALE_PRESETS,
    derive_target_labels,
    evaluate_feature_attack_method,
    prepare_case,
    select_victims,
)
from repro.explain import GNNExplainer


@pytest.fixture(scope="module")
def smoke_case():
    case = prepare_case("citeseer", SCALE_PRESETS["smoke"])
    victims = derive_target_labels(case, select_victims(case))
    if not victims:
        pytest.skip("no flippable victims at smoke scale")
    return case, victims


def _factory(case):
    config = case.config
    return lambda _graph: GNNExplainer(
        case.model,
        epochs=config.explainer_epochs,
        lr=config.explainer_lr,
        seed=case.seed + 41,
        explain_features=True,
    )


class TestEvaluateFeatureAttackMethod:
    def test_returns_complete_evaluation(self, smoke_case):
        case, victims = smoke_case
        evaluation = evaluate_feature_attack_method(
            case, FeatureFGA(case.model, seed=3), victims, _factory(case)
        )
        assert evaluation.method == "FeatureFGA"
        assert 0.0 <= evaluation.asr <= 1.0
        assert 0.0 <= evaluation.asr_t <= 1.0
        for value in (evaluation.precision, evaluation.recall, evaluation.f1):
            assert np.isnan(value) or 0.0 <= value <= 1.0
        assert len(evaluation.per_victim) == len(victims)

    def test_per_victim_records_flips(self, smoke_case):
        case, victims = smoke_case
        evaluation = evaluate_feature_attack_method(
            case, FeatureFGA(case.model, seed=3), victims, _factory(case)
        )
        for record in evaluation.per_victim:
            assert {"node", "hit_target", "f1", "ndcg"} <= set(record)

    def test_flip_budget_override(self, smoke_case):
        """A zero flip budget means no attack and zero detection."""
        case, victims = smoke_case
        evaluation = evaluate_feature_attack_method(
            case,
            FeatureFGA(case.model, seed=3),
            victims,
            _factory(case),
            flip_budget=0,
        )
        # FeatureAttackResult with no flips: prediction unchanged.
        assert evaluation.asr_t == 0.0
        assert evaluation.f1 == 0.0

    def test_row_matches_paper_order(self, smoke_case):
        case, victims = smoke_case
        evaluation = evaluate_feature_attack_method(
            case, FeatureFGA(case.model, seed=3), victims, _factory(case)
        )
        assert list(evaluation.row()) == [
            "ASR",
            "ASR-T",
            "Precision",
            "Recall",
            "F1",
            "NDCG",
        ]


class TestConfigInspectorSettings:
    def test_explainer_lr_present_in_all_presets(self):
        for name, preset in SCALE_PRESETS.items():
            assert preset.explainer_lr > 0, name
            assert preset.explainer_epochs >= 80, (
                f"{name}: unconverged inspectors rank edges by init noise"
            )

    def test_full_scale_runs_longer_than_small(self):
        assert (
            SCALE_PRESETS["full"].explainer_epochs
            >= SCALE_PRESETS["small"].explainer_epochs
            > SCALE_PRESETS["smoke"].explainer_epochs
        )
