"""GEAttack ablations: greedy vs one-shot selection."""

import numpy as np
import pytest

from repro.attacks import GEAttack


class TestOneShot:
    def test_one_shot_respects_budget(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target_label, budget = flippable_victim
        attack = GEAttack(trained_model, seed=0, greedy=False)
        result = attack.attack(tiny_graph, node, target_label, budget)
        assert len(result.added_edges) <= budget
        assert all(node in edge for edge in result.added_edges)

    def test_one_shot_single_edge_matches_greedy(
        self, tiny_graph, trained_model, flippable_victim
    ):
        """With Δ=1 the two strategies see the same gradient and agree."""
        node, target_label, _ = flippable_victim
        greedy = GEAttack(trained_model, seed=0, greedy=True).attack(
            tiny_graph, node, target_label, 1
        )
        one_shot = GEAttack(trained_model, seed=0, greedy=False).attack(
            tiny_graph, node, target_label, 1
        )
        assert greedy.added_edges == one_shot.added_edges

    def test_strategies_may_diverge_at_larger_budget(
        self, tiny_graph, trained_model, flippable_victim
    ):
        """Greedy re-evaluates after each insertion; one-shot cannot.

        They are allowed to coincide, but greedy must never be *weaker* at
        attacking on this fixture (the design-decision rationale)."""
        node, target_label, budget = flippable_victim
        if budget < 2:
            pytest.skip("needs budget >= 2")
        greedy = GEAttack(trained_model, seed=0, greedy=True).attack(
            tiny_graph, node, target_label, budget
        )
        one_shot = GEAttack(trained_model, seed=0, greedy=False).attack(
            tiny_graph, node, target_label, budget
        )
        assert int(greedy.hit_target) >= int(one_shot.hit_target)

    def test_zero_candidates_handled(self, trained_model, tiny_graph):
        # Pick a label with no candidates by exhausting: use an absurd label
        # index bounded by num_classes-1 but fully connected is impractical;
        # instead verify empty-candidate path via a victim already connected
        # to every target-label node.
        labels = tiny_graph.labels
        target_label = int(labels[0])
        members = np.flatnonzero(labels == target_label)
        victim = None
        for node in range(tiny_graph.num_nodes):
            neighbors = set(tiny_graph.neighbors(node).tolist()) | {node}
            if set(members.tolist()) <= neighbors:
                victim = node
                break
        if victim is None:
            pytest.skip("no fully-saturated victim in fixture")
        result = GEAttack(trained_model, seed=0, greedy=False).attack(
            tiny_graph, victim, target_label, 3
        )
        assert result.added_edges == []
