"""DICE baseline attack and the GCN-SVD spectral defense."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.attacks import DICE, FGATargeted, Nettack
from repro.defense import SVDDefense, low_rank_adjacency
from repro.graph.utils import edge_tuple


class TestDICE:
    def test_budget_respected(self, tiny_graph, trained_model, flippable_victim):
        node, target, budget = flippable_victim
        result = DICE(trained_model, seed=5).attack(tiny_graph, node, target, budget)
        moves = len(result.added_edges) + len(result.history)
        assert moves <= budget

    def test_added_edges_hit_target_label(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target, budget = flippable_victim
        result = DICE(trained_model, seed=5).attack(tiny_graph, node, target, budget)
        for u, v in result.added_edges:
            partner = v if u == node else u
            assert int(tiny_graph.labels[partner]) == target

    def test_deletions_remove_same_label_neighbors(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target, budget = flippable_victim
        result = DICE(trained_model, seed=5, add_probability=0.0).attack(
            tiny_graph, node, target, budget
        )
        true_label = int(tiny_graph.labels[node])
        for kind, (u, v) in result.history:
            assert kind == "removed"
            partner = v if u == node else u
            assert tiny_graph.has_edge(u, v)
            assert not result.perturbed_graph.has_edge(u, v)
            assert int(tiny_graph.labels[partner]) == true_label

    def test_untargeted_connects_other_classes(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, _, budget = flippable_victim
        result = DICE(trained_model, seed=5, add_probability=1.0).attack(
            tiny_graph, node, None, budget
        )
        true_label = int(tiny_graph.labels[node])
        assert result.added_edges
        for u, v in result.added_edges:
            partner = v if u == node else u
            assert int(tiny_graph.labels[partner]) != true_label

    def test_deterministic_given_seed(
        self, tiny_graph, trained_model, flippable_victim
    ):
        node, target, budget = flippable_victim
        first = DICE(trained_model, seed=5).attack(tiny_graph, node, target, budget)
        second = DICE(trained_model, seed=5).attack(tiny_graph, node, target, budget)
        assert first.added_edges == second.added_edges
        assert first.history == second.history

    def test_invalid_add_probability_rejected(self, trained_model):
        with pytest.raises(ValueError):
            DICE(trained_model, add_probability=1.5)

    def test_weaker_than_gradient_attack(
        self, tiny_graph, trained_model, clean_predictions
    ):
        """Across a victim pool, DICE should not beat FGA-T at attacking."""
        degrees = tiny_graph.degrees()
        victims = np.flatnonzero(
            (clean_predictions == tiny_graph.labels)
            & (degrees >= 2)
            & (degrees <= 5)
        )[:8]
        dice_hits = gradient_hits = 0
        for node in victims:
            node = int(node)
            target = int((clean_predictions[node] + 1) % tiny_graph.num_classes)
            budget = int(degrees[node])
            dice_hits += (
                DICE(trained_model, seed=5)
                .attack(tiny_graph, node, target, budget)
                .hit_target
            )
            gradient_hits += (
                FGATargeted(trained_model, seed=5)
                .attack(tiny_graph, node, target, budget)
                .hit_target
            )
        assert dice_hits <= gradient_hits


class TestLowRankAdjacency:
    def test_output_symmetric_nonnegative(self, tiny_graph):
        reconstruction = low_rank_adjacency(tiny_graph.adjacency, rank=8)
        assert np.allclose(reconstruction, reconstruction.T)
        assert np.all(reconstruction >= 0)

    def test_rank_two_structure_recovered_exactly(self):
        """K_{3,4}'s adjacency has rank 2, so rank-2 truncation is exact."""
        dense = np.zeros((7, 7))
        dense[:3, 3:] = 1.0
        dense[3:, :3] = 1.0
        reconstruction = low_rank_adjacency(sp.csr_matrix(dense), rank=2)
        assert np.allclose(reconstruction, dense, atol=1e-8)

    def test_rank_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            low_rank_adjacency(tiny_graph.adjacency, rank=0)
        with pytest.raises(ValueError):
            low_rank_adjacency(tiny_graph.adjacency, rank=tiny_graph.num_nodes)

    def test_higher_rank_reduces_error(self, tiny_graph):
        dense = tiny_graph.dense_adjacency()
        errors = [
            np.linalg.norm(dense - low_rank_adjacency(tiny_graph.adjacency, rank=k))
            for k in (4, 16, 64)
        ]
        assert errors[0] >= errors[1] >= errors[2]


class TestSVDDefense:
    def test_clean_predictions_mostly_preserved(self, tiny_graph, trained_model):
        """Purification must not destroy the clean graph's predictions."""
        from repro.attacks.base import Attack

        helper = Attack(trained_model)
        clean = helper.predict(tiny_graph)
        defended = SVDDefense(trained_model, rank=32).predict(tiny_graph)
        agreement = float(np.mean(clean == defended))
        assert agreement > 0.7

    def test_adversarial_edges_lose_energy(
        self, tiny_graph, trained_model, flippable_victim
    ):
        """Injected edges reconstruct weaker than the clean edges they join."""
        node, target, budget = flippable_victim
        result = Nettack(trained_model, seed=5).attack(
            tiny_graph, node, target, budget
        )
        if not result.added_edges:
            pytest.skip("Nettack added nothing for this victim")
        defense = SVDDefense(trained_model, rank=10)
        adversarial_energy = defense.edge_energy(
            result.perturbed_graph, result.added_edges
        )
        clean_edges = [
            edge_tuple(node, v)
            for v in tiny_graph.neighbors(node)
        ]
        clean_energy = defense.edge_energy(result.perturbed_graph, clean_edges)
        assert adversarial_energy.mean() < clean_energy.mean()

    def test_recovery_rate_bounds(self, tiny_graph, trained_model, flippable_victim):
        node, target, budget = flippable_victim
        result = FGATargeted(trained_model, seed=5).attack(
            tiny_graph, node, target, budget
        )
        defense = SVDDefense(trained_model, rank=16)
        rate = defense.recovery_rate([result], tiny_graph.labels)
        assert 0.0 <= rate <= 1.0

    def test_empty_results_nan(self, trained_model, tiny_graph):
        defense = SVDDefense(trained_model, rank=4)
        assert np.isnan(defense.recovery_rate([], tiny_graph.labels))
