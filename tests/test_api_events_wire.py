"""Exact wire round-trips for every typed event (the SSE payload layer).

The service streams ``event.to_dict()`` JSON and clients rebuild typed
events with :func:`repro.api.events.event_from_dict`; these tests pin
the contract: ``from_dict(to_dict(e)) == e`` for every event class, with
the compare-excluded ``span`` field preserved verbatim, nested result
objects rebuilt field-for-field, and NaN surviving the JSON dialect.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.api import events as events_module
from repro.api.events import (
    EVENT_TYPES,
    CasePrepared,
    CellDeferred,
    CellExecuted,
    CellScored,
    MethodEvaluated,
    MethodStarted,
    RunCompleted,
    SweepPointEvaluated,
    VictimAttacked,
    VictimEvaluated,
    event_from_dict,
)
from repro.api.specs import ThreatModel
from repro.arena.grid import ScenarioCell, ScenarioGrid
from repro.arena.runner import ArenaRun, CellEvaluation
from repro.attacks import AttackResult, VictimSpec
from repro.experiments import SCALE_PRESETS
from repro.experiments.pipeline import MethodEvaluation, Victim
from repro.experiments.sweeps import SweepPoint
from repro.obs.manifest import RunManifest

CELL = ScenarioCell(
    dataset="cora",
    hidden=16,
    attack="GEAttack",
    budget_cap=3,
    seed=0,
    threat=ThreatModel.parse("surrogate:h8,s3+adaptive:jaccard"),
)

RESULT = AttackResult(
    perturbed_graph=None,
    added_edges=[(3, 17), (3, 21)],
    target_node=3,
    target_label=2,
    original_prediction=1,
    final_prediction=2,
    history=[("add", (3, 17)), ("add", (3, 21))],
    # Direct dataclass equality needs an empty trace (from_dict decodes
    # trace arrays to numpy, which breaks ``==``); the non-empty-trace
    # exactness is asserted separately via to_dict in TestNestedPayloads.
    score_trace=[],
)

EVALUATION = MethodEvaluation(
    method="GEAttack",
    asr=0.75,
    asr_t=0.5,
    precision=0.4,
    recall=0.3,
    f1=0.34,
    ndcg=0.6,
    per_victim=[{"node": 3, "asr": 1.0}],
)


def _sample_events():
    """One realistically populated instance of every event class."""
    manifest = RunManifest(
        wall_seconds=1.25,
        cells=[{"label": CELL.label(), "seconds": 0.5, "cached": 1, "executed": 2}],
        counters={"store.writes": 2, "lease.acquired": 1},
    )
    run = ArenaRun(
        grid=ScenarioGrid(attacks=("GEAttack",), defenses=("none",)),
        config=SCALE_PRESETS["smoke"],
        executed=2,
        loaded=1,
        deferred=1,
        evaluations=[
            CellEvaluation(
                cell=CELL,
                defense="jaccard",
                victims=4,
                evasion_rate=0.5,
                inspection_evasion_rate=0.25,
                detection_auc=0.8,
            )
        ],
        manifest=manifest,
    )
    return [
        CasePrepared(
            dataset="cora", seed=0, hidden=16, test_accuracy=0.81,
            num_victims=8, span="1.1",
        ),
        MethodStarted(method="GEAttack", dataset="cora", num_victims=8, span="1.2"),
        VictimEvaluated(
            method="GEAttack",
            victim=Victim(node=3, degree=4, target_label=2),
            result=RESULT,
            report={"precision": 0.4, "recall": 0.3, "f1": 0.34, "ndcg": 0.6},
            index=0,
            total=8,
            ranking=(17, 21, 9),
            span="1.2.1",
        ),
        MethodEvaluated(method="GEAttack", evaluation=EVALUATION, span="1.3"),
        SweepPointEvaluated(
            kind="lambda",
            value=0.5,
            point=SweepPoint(
                value=0.5, asr_t=0.5, precision=0.4, recall=0.3, f1=0.34,
                ndcg=0.6, extras={"asr": 0.75},
            ),
            span="2.1",
        ),
        VictimAttacked(
            cell=CELL,
            victim=VictimSpec(node=3, target_label=2, budget=3),
            loaded=True,
            span="3.1.1",
        ),
        CellDeferred(cell=CELL, missing=2, span="3.2"),
        CellExecuted(cell=CELL, cached=1, executed=2, span="3.3"),
        CellScored(
            evaluation=CellEvaluation(
                cell=CELL,
                defense="none",
                victims=4,
                evasion_rate=0.75,
                inspection_evasion_rate=0.5,
                detection_auc=0.7,
            ),
            span="3.4",
        ),
        RunCompleted(result=run, span="3"),
    ]


@pytest.fixture(params=range(len(EVENT_TYPES)), ids=sorted(EVENT_TYPES))
def sample(request):
    by_name = {type(event).__name__: event for event in _sample_events()}
    return by_name[sorted(EVENT_TYPES)[request.param]]


class TestRoundTrip:
    def test_every_event_class_has_a_sample(self):
        names = {type(event).__name__ for event in _sample_events()}
        assert names == set(EVENT_TYPES)

    def test_exact_round_trip(self, sample):
        data = sample.to_dict()
        assert data["event"] == type(sample).__name__
        back = type(sample).from_dict(data)
        assert back == sample

    def test_span_preserved_despite_compare_exclusion(self, sample):
        back = type(sample).from_dict(sample.to_dict())
        assert back.span == sample.span

    def test_survives_json_text(self, sample):
        # The actual wire: dict -> JSON text -> dict -> typed event.
        data = json.loads(json.dumps(sample.to_dict()))
        assert event_from_dict(data) == sample

    def test_event_from_dict_dispatches_by_tag(self, sample):
        back = event_from_dict(sample.to_dict())
        assert type(back) is type(sample)

    def test_mismatched_tag_rejected(self, sample):
        data = sample.to_dict()
        data["event"] = "SomethingElse"
        with pytest.raises((KeyError, ValueError)):
            event_from_dict(data)


class TestNestedPayloads:
    def test_threat_model_round_trips_inside_cell(self):
        event = CellDeferred(cell=CELL, missing=1)
        back = event_from_dict(json.loads(json.dumps(event.to_dict())))
        assert back.cell.threat == CELL.threat
        assert back.cell.threat.defense_params == CELL.threat.defense_params

    def test_victim_ranking_tuple_survives(self):
        event = next(
            e for e in _sample_events() if isinstance(e, VictimEvaluated)
        )
        back = event_from_dict(json.loads(json.dumps(event.to_dict())))
        assert back.ranking == (17, 21, 9)
        assert isinstance(back.ranking, tuple)

    def test_attack_result_with_score_trace_exact_via_to_dict(self):
        result = AttackResult(
            perturbed_graph=None,
            added_edges=[(3, 17)],
            target_node=3,
            target_label=2,
            original_prediction=1,
            final_prediction=2,
            history=[("add", (3, 17))],
            score_trace=[
                {
                    "choice": 1,
                    "candidates": np.array([17, 21]),
                    "scores": np.array([0.1, 0.9]),
                }
            ],
        )
        event = VictimEvaluated(
            method="FGA-T", victim=Victim(3, 4, 2), result=result,
            report={}, index=0, total=1,
        )
        back = event_from_dict(json.loads(json.dumps(event.to_dict())))
        # from_dict decodes trace arrays to numpy, so compare canonically.
        assert back.result.to_dict() == result.to_dict()

    def test_nan_metric_survives(self):
        event = CellScored(
            evaluation=CellEvaluation(
                cell=CELL,
                defense="none",
                victims=0,
                evasion_rate=0.0,
                inspection_evasion_rate=float("nan"),
                detection_auc=float("nan"),
            )
        )
        back = event_from_dict(json.loads(json.dumps(event.to_dict())))
        assert math.isnan(back.evaluation.inspection_evasion_rate)
        assert math.isnan(back.evaluation.detection_auc)

    def test_numpy_scalars_lowered(self):
        event = CellExecuted(
            cell=CELL, cached=np.int64(1), executed=np.int64(2)
        )
        data = json.loads(json.dumps(event.to_dict()))
        assert data["cached"] == 1
        back = event_from_dict(data)
        assert back.cached == 1 and back.executed == 2

    def test_run_completed_manifest_round_trips(self):
        event = next(
            e for e in _sample_events() if isinstance(e, RunCompleted)
        )
        back = event_from_dict(json.loads(json.dumps(event.to_dict())))
        assert back.result == event.result  # manifest is compare-excluded
        assert back.result.manifest.wall_seconds == 1.25
        assert back.result.manifest.counters == {
            "store.writes": 2, "lease.acquired": 1,
        }


class TestModuleSurface:
    def test_event_types_covers_all_exported_events(self):
        assert set(EVENT_TYPES) == {
            name
            for name in events_module.__all__
            if name[0].isupper() and name != "EVENT_TYPES"
        }

    def test_unknown_tag_raises_key_error(self):
        with pytest.raises(KeyError):
            event_from_dict({"event": "NoSuchEvent"})
